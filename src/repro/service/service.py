"""The long-running metascheduler service.

:class:`MetaSchedulerService` wraps the batch-simulation stack — one
:class:`~repro.batch.server.BatchServer` per cluster, the
:class:`~repro.grid.metascheduler.MetaScheduler` on top — in an asyncio
service loop that accepts a *continuous stream* of submissions instead of
a closed trace:

* **Bounded admission queue.**  :meth:`MetaSchedulerService.offer` is the
  synchronous fast path: it stamps the arrival, appends a
  :class:`Ticket` to a deque and returns; nothing is scheduled yet.  The
  queue is bounded (``max_queue``) and refuses work outright when full.
* **Batched admission per heartbeat.**  The admission loop drains up to
  ``admission_batch`` tickets per scheduler heartbeat and maps the whole
  batch through :meth:`MetaScheduler.submit_many` — one bulk ECT query
  per server instead of one scalar query per job per server.  This is
  where the columnar planner work of PRs 6-8 pays off: the shell adds a
  deque append and a ticket to each submission, the mapping cost is the
  bulk path's.
* **Explicit backpressure.**  Once the queue depth passes ``high_water``
  the service *engages backpressure*: :meth:`offer` rejects with
  :class:`SubmitRejected` (policy ``reject``) or :meth:`submit` awaits
  until the queue drains below ``low_water`` (policy ``await``).  The
  hysteresis prevents flapping at the mark.
* **Swappable clock.**  All timing goes through a
  :class:`~repro.service.clock.Clock`: virtual mode drives the simulation
  kernel as fast as the hardware allows (benchmarks, CI, tests), real
  mode follows the wall clock (an actual online service).

The service owns a registry of tickets for status/cancel queries.
Completed (and cancelled) tickets retire into a bounded history, and the
meta-scheduler's ``initial_mapping`` entries of retired jobs are dropped
with them — a service that has processed a hundred million jobs holds
state proportional to the *live* population plus the retention window,
not the full history.
"""

from __future__ import annotations

import asyncio
import enum
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.batch.arrayprofile import DEFAULT_PROFILE_ENGINE
from repro.batch.job import Job, JobState
from repro.batch.server import BatchServer, BatchServerError
from repro.grid.metascheduler import MappingPolicy, MetaScheduler
from repro.grid.reallocation import DEFAULT_THRESHOLD, ReallocationAgent
from repro.platform.spec import PlatformSpec
from repro.service.clock import Clock, make_clock
from repro.sim.kernel import SimulationKernel


class SubmitRejected(RuntimeError):
    """An offered job was refused at the door (backpressure / full / closing)."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class BackpressurePolicy(enum.Enum):
    """What happens to submissions while backpressure is engaged."""

    REJECT = "reject"  #: refuse immediately with :class:`SubmitRejected`
    AWAIT = "await"  #: :meth:`MetaSchedulerService.submit` waits for drain

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TicketState(enum.Enum):
    """Lifecycle of one submission inside the service."""

    QUEUED = "queued"  #: accepted, waiting in the admission queue
    WAITING = "waiting"  #: mapped to a cluster, waiting in its batch queue
    RUNNING = "running"  #: started on its cluster
    COMPLETED = "completed"  #: finished (normally or killed at walltime)
    CANCELLED = "cancelled"  #: cancelled before it started
    REJECTED = "rejected"  #: mapped to no cluster (fits nowhere)


#: Job states that map one-to-one onto ticket states once admitted.
_JOB_TO_TICKET = {
    JobState.WAITING: TicketState.WAITING,
    JobState.RUNNING: TicketState.RUNNING,
    JobState.COMPLETED: TicketState.COMPLETED,
    JobState.CANCELLED: TicketState.CANCELLED,
    JobState.REJECTED: TicketState.REJECTED,
}


class Ticket:
    """One submission tracked by the service (status / cancel handle)."""

    __slots__ = (
        "job",
        "enqueued_at",
        "admitted_at",
        "admit_latency_s",
        "_queued_state",
        "_enqueued_perf",
    )

    def __init__(self, job: Job, enqueued_at: float) -> None:
        self.job = job
        #: service-clock time the submission entered the admission queue
        self.enqueued_at = enqueued_at
        #: service-clock time the submission was mapped (``None`` while queued)
        self.admitted_at: Optional[float] = None
        #: wall-clock seconds between enqueue and mapping (``None`` while queued)
        self.admit_latency_s: Optional[float] = None
        self._queued_state = TicketState.QUEUED
        self._enqueued_perf = time.perf_counter()

    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def admitted(self) -> bool:
        return self.admitted_at is not None

    @property
    def state(self) -> TicketState:
        """Current lifecycle state (delegates to the job once admitted)."""
        if not self.admitted:
            return self._queued_state
        return _JOB_TO_TICKET.get(self.job.state, TicketState.WAITING)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready status document (what ``GET /jobs/<id>`` returns)."""
        job = self.job
        return {
            "job_id": job.job_id,
            "state": self.state.value,
            "cluster": job.cluster,
            "procs": job.procs,
            "walltime": job.walltime,
            "enqueued_at": self.enqueued_at,
            "admitted_at": self.admitted_at,
            "admit_latency_s": self.admit_latency_s,
            "start_time": job.start_time,
            "completion_time": job.completion_time,
        }


@dataclass
class ServiceConfig:
    """Tunables of the service shell (all times in service-clock seconds)."""

    #: scheduler heartbeat: one admission pass per tick
    heartbeat: float = 0.05
    #: tickets mapped per admission pass (one bulk ECT query per server each)
    admission_batch: int = 512
    #: hard bound of the admission queue (offers beyond are refused)
    max_queue: int = 100_000
    #: queue depth at which backpressure engages
    high_water: int = 10_000
    #: queue depth at which engaged backpressure releases (hysteresis);
    #: defaults to half the high-water mark
    low_water: Optional[int] = None
    #: what happens to submissions while backpressure is engaged
    backpressure: "BackpressurePolicy | str" = BackpressurePolicy.REJECT
    #: completed/cancelled tickets kept for status queries (oldest evicted)
    completed_retention: int = 100_000
    #: recent admit latencies kept for the stats percentiles
    latency_window: int = 100_000
    #: service-clock seconds between reallocation heartbeats (``None``
    #: disables the engine — the default: reallocation is opt-in)
    reallocation_interval: Optional[float] = None
    #: the paper's Algorithm 1 (``"standard"``) or 2 (``"cancellation"``)
    reallocation_algorithm: str = "standard"
    #: heuristic ordering the reallocation scan (MCT, MinMin, ...)
    reallocation_heuristic: str = "mct"
    #: Algorithm 1 only moves a job when it gains more than this (seconds)
    reallocation_threshold: float = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if isinstance(self.backpressure, str):
            self.backpressure = BackpressurePolicy(self.backpressure.lower())
        if self.heartbeat < 0:
            raise ValueError(f"heartbeat must be >= 0, got {self.heartbeat}")
        if self.admission_batch <= 0:
            raise ValueError(f"admission_batch must be positive, got {self.admission_batch}")
        if self.max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {self.max_queue}")
        if self.high_water <= 0 or self.high_water > self.max_queue:
            raise ValueError(
                f"high_water must be in (0, max_queue], got {self.high_water}"
            )
        if self.low_water is None:
            self.low_water = max(1, self.high_water // 2)
        if not 0 < self.low_water <= self.high_water:
            raise ValueError(
                f"low_water must be in (0, high_water], got {self.low_water}"
            )
        if self.completed_retention < 0:
            raise ValueError(
                f"completed_retention must be >= 0, got {self.completed_retention}"
            )
        if self.reallocation_interval is not None and self.reallocation_interval <= 0:
            raise ValueError(
                f"reallocation_interval must be positive, got {self.reallocation_interval}"
            )
        if self.reallocation_algorithm not in ("standard", "cancellation"):
            raise ValueError(
                "reallocation_algorithm must be 'standard' or 'cancellation', "
                f"got {self.reallocation_algorithm!r}"
            )
        if self.reallocation_threshold < 0:
            raise ValueError(
                f"reallocation_threshold must be >= 0, got {self.reallocation_threshold}"
            )


class MetaSchedulerService:
    """Online metascheduler over a platform (see module docstring).

    Parameters
    ----------
    platform:
        Platform description; one batch server is built per cluster.
    batch_policy:
        Local scheduling policy of every cluster (FCFS or CBF).
    mapping_policy:
        Online mapping policy of the meta-scheduler (MCT by default).
    clock:
        ``"virtual"`` (simulated time, default), ``"real"`` (wall clock)
        or a prebuilt :class:`Clock` sharing the service's kernel.
    clock_rate:
        Simulated seconds per wall second in real mode.
    config:
        :class:`ServiceConfig` tunables.
    kernel_queue / profile_engine:
        Passed through to the kernel and the batch servers.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        batch_policy: str = "fcfs",
        mapping_policy: "MappingPolicy | str" = MappingPolicy.MCT,
        clock: "Clock | str" = "virtual",
        clock_rate: float = 1.0,
        config: Optional[ServiceConfig] = None,
        kernel_queue: str = "calendar",
        profile_engine: str = DEFAULT_PROFILE_ENGINE,
    ) -> None:
        self.platform = platform
        self.config = config if config is not None else ServiceConfig()
        self.kernel = SimulationKernel(queue=kernel_queue)
        if isinstance(clock, Clock):
            if clock.kernel is not self.kernel:  # pragma: no cover - defensive
                raise ValueError("a prebuilt clock must share the service kernel")
            self.clock = clock
        else:
            self.clock = make_clock(clock, self.kernel, rate=clock_rate)
        self.servers: List[BatchServer] = [
            BatchServer(
                self.kernel,
                spec.name,
                spec.procs,
                spec.speed,
                policy=batch_policy,
                on_completion=self._on_job_completion,
                timeline=spec.timeline,
                profile_engine=profile_engine,
            )
            for spec in platform
        ]
        # Retired tickets already call forget_mappings; the retention cap
        # is a second bound so the mapping dict cannot outgrow the ticket
        # registry even through code paths that bypass retirement.
        self.scheduler = MetaScheduler(
            self.servers,
            policy=mapping_policy,
            mapping_retention=self.config.completed_retention + self.config.max_queue,
        )
        # Live reallocation heartbeat (PR 9 follow-up): the agent's
        # persistent incremental engine re-tunes the waiting queues every
        # ``reallocation_interval`` service-clock seconds.  The agent is
        # never ``start()``-ed — the admission loop drives it directly, so
        # the same code path works under both clock modes.
        self._reallocator: Optional[ReallocationAgent] = None
        self._next_reallocation: Optional[float] = None
        self.reallocation_ticks = 0
        if self.config.reallocation_interval is not None:
            self._reallocator = ReallocationAgent(
                self.kernel,
                self.servers,
                heuristic=self.config.reallocation_heuristic,
                algorithm=self.config.reallocation_algorithm,
                period=self.config.reallocation_interval,
                threshold=self.config.reallocation_threshold,
            )

        # Admission pipeline state.
        self._pending: Deque[Ticket] = deque()
        self._cancelled_in_queue = 0
        self._registry: Dict[int, Ticket] = {}
        self._retired: Deque[int] = deque()
        self._next_job_id = 1
        self._closing = False
        self._task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._below_low_water = asyncio.Event()
        self._below_low_water.set()
        self.backpressure_engaged = False

        # Counters (monotonic over the service lifetime).
        self.accepted = 0
        self.admitted = 0
        self.completed = 0
        self.cancelled = 0
        self.rejected_unmappable = 0
        self.rejected_backpressure = 0
        self.rejected_full = 0
        self.rejected_closing = 0
        self.backpressure_engagements = 0
        self.admission_passes = 0
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Live submissions waiting in the admission queue."""
        return len(self._pending) - self._cancelled_in_queue

    @property
    def in_flight(self) -> int:
        """Admitted jobs not yet completed, cancelled or rejected."""
        return self.admitted - self.completed - self.cancelled_after_admission \
            - self.rejected_unmappable

    @property
    def cancelled_after_admission(self) -> int:
        """Cancellations that removed a job from a cluster queue.

        Reallocation moves go through the same ``server.cancel`` path but
        immediately resubmit the job elsewhere — those cancels are backed
        out so a migrated job still counts as in flight.
        """
        total = sum(server.cancelled_count for server in self.servers)
        if self._reallocator is not None:
            total -= (
                self._reallocator.tuned_moves
                + self._reallocator.cancelled_resubmissions
            )
        return total

    @property
    def is_closing(self) -> bool:
        return self._closing

    def ticket(self, job_id: int) -> Ticket:
        """Ticket of a known job (raises ``KeyError`` for unknown ids)."""
        return self._registry[job_id]

    def health(self) -> Dict[str, object]:
        """Liveness document (what ``GET /health`` returns)."""
        return {
            "status": "draining" if self._closing else "ok",
            "clock": self.clock.mode,
            "now": self.clock.now(),
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "backpressure_engaged": self.backpressure_engaged,
            "clusters": {
                server.name: {
                    "up": server.is_up,
                    "capacity": server.capacity,
                    "waiting": server.queue_length,
                    "running": server.cluster.running_count,
                }
                for server in self.servers
            },
        }

    def stats(self) -> Dict[str, object]:
        """Counter snapshot (what ``GET /stats`` returns)."""
        latencies = sorted(self._latencies)
        document: Dict[str, object] = {
            "accepted": self.accepted,
            "admitted": self.admitted,
            "completed": self.completed,
            "cancelled": self.cancelled + self.cancelled_after_admission,
            "rejected_unmappable": self.rejected_unmappable,
            "rejected_backpressure": self.rejected_backpressure,
            "rejected_full": self.rejected_full,
            "rejected_closing": self.rejected_closing,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "admission_passes": self.admission_passes,
            "backpressure_engaged": self.backpressure_engaged,
            "backpressure_engagements": self.backpressure_engagements,
        }
        if latencies:
            document["admit_latency_s"] = {
                "p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
                "max": latencies[-1],
                "samples": len(latencies),
            }
        if self._reallocator is not None:
            document["reallocation"] = {
                "interval": self.config.reallocation_interval,
                "algorithm": self.config.reallocation_algorithm,
                "heuristic": self.config.reallocation_heuristic,
                "ticks": self.reallocation_ticks,
                "tuned": self._reallocator.tuned_moves,
                "cancelled": self._reallocator.cancelled_resubmissions,
                "migrated": self._reallocator.total_reallocations,
            }
        return document

    # ------------------------------------------------------------------ #
    # Submission                                                         #
    # ------------------------------------------------------------------ #
    def offer(
        self,
        procs: int,
        runtime: float,
        walltime: Optional[float] = None,
    ) -> Ticket:
        """Accept one submission into the admission queue (fast, synchronous).

        Raises
        ------
        SubmitRejected
            When the service is shutting down, the queue is at its hard
            bound, or backpressure is engaged under the ``reject`` policy.
        ValueError
            On invalid job parameters (propagated from :class:`Job`).
        """
        if self._closing:
            self.rejected_closing += 1
            raise SubmitRejected("closing", "service is shutting down")
        depth = self.queue_depth
        if depth >= self.config.max_queue:
            self.rejected_full += 1
            raise SubmitRejected(
                "queue-full", f"admission queue is at its bound ({self.config.max_queue})"
            )
        if depth >= self.config.high_water and not self.backpressure_engaged:
            self._engage_backpressure()
        if (
            self.backpressure_engaged
            and self.config.backpressure is BackpressurePolicy.REJECT
        ):
            self.rejected_backpressure += 1
            raise SubmitRejected(
                "backpressure",
                f"queue depth {depth} is past the high-water mark "
                f"({self.config.high_water})",
            )
        job_id = self._next_job_id
        self._next_job_id += 1
        job = Job(
            job_id=job_id,
            submit_time=self.clock.now(),
            procs=procs,
            runtime=runtime,
            walltime=walltime if walltime is not None else runtime,
        )
        ticket = Ticket(job, enqueued_at=job.submit_time)
        self._registry[job_id] = ticket
        self._pending.append(ticket)
        self.accepted += 1
        self._wake.set()
        return ticket

    async def submit(
        self,
        procs: int,
        runtime: float,
        walltime: Optional[float] = None,
    ) -> Ticket:
        """Awaitable :meth:`offer` honouring the ``await`` backpressure policy.

        Under the ``await`` policy the caller cooperatively blocks while
        backpressure is engaged and resumes once the queue drains below
        the low-water mark; under ``reject`` this is :meth:`offer`.
        """
        if self.config.backpressure is BackpressurePolicy.AWAIT:
            while self.backpressure_engaged and not self._closing:
                await self._below_low_water.wait()
        return self.offer(procs, runtime, walltime)

    def cancel(self, job_id: int) -> Ticket:
        """Cancel a queued or waiting job.

        Raises
        ------
        KeyError
            Unknown job id (never accepted, or already retired).
        ValueError
            The job already started or finished — the paper's model (and
            this service) only ever cancels jobs in the waiting state.
        """
        ticket = self._registry[job_id]
        state = ticket.state
        if state is TicketState.QUEUED:
            # Lazy removal: the admission loop skips cancelled tickets.
            ticket._queued_state = TicketState.CANCELLED
            self._cancelled_in_queue += 1
            self.cancelled += 1
            self._retire(ticket)
            return ticket
        if state is TicketState.WAITING:
            server = self.scheduler.server_by_name(ticket.job.cluster)
            try:
                server.cancel(ticket.job)
            except BatchServerError as exc:  # pragma: no cover - defensive
                raise ValueError(str(exc)) from exc
            self._retire(ticket)
            return ticket
        raise ValueError(f"job {job_id} is {state.value}; only queued or waiting jobs can be cancelled")

    # ------------------------------------------------------------------ #
    # Service loop                                                       #
    # ------------------------------------------------------------------ #
    def start(self) -> asyncio.Task:
        """Start the admission loop as an asyncio task (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._admission_loop(), name="repro-service-admission"
            )
        return self._task

    async def __aenter__(self) -> "MetaSchedulerService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> Dict[str, object]:
        """Stop accepting work and wind the service down.

        With ``drain`` (the default) every already-accepted submission is
        still admitted and mapped before the loop exits; without it the
        queued tickets are cancelled.  Jobs already waiting or running on
        clusters stay in flight — the returned document reports them, so
        a supervisor can hand the kernel to :meth:`run_until_idle` or
        persist state.  Idempotent.
        """
        self._closing = True
        queued_cancelled = 0
        if not drain:
            for ticket in self._pending:
                if ticket.state is TicketState.QUEUED:
                    ticket._queued_state = TicketState.CANCELLED
                    self._cancelled_in_queue += 1
                    self.cancelled += 1
                    queued_cancelled += 1
                    self._retire(ticket)
        self._wake.set()
        # Release any submitter parked on the await-policy gate.
        self._below_low_water.set()
        if self._task is not None:
            await self._task
            self._task = None
        return {
            "drained": drain,
            "queued_cancelled": queued_cancelled,
            "in_flight": self.in_flight,
            "accepted": self.accepted,
            "admitted": self.admitted,
            "completed": self.completed,
        }

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drive the kernel until every in-flight job completed (virtual mode).

        Returns the number of events fired.  Only meaningful under the
        virtual clock (under a real clock the kernel follows wall time);
        used by tests and the ``repro serve`` shutdown path to finish
        jobs in flight after the admission loop stopped.
        """
        fired_before = self.kernel.fired_events
        if max_events is None:
            self.kernel.run()
        else:
            while self.kernel.pending_events and (
                self.kernel.fired_events - fired_before
            ) < max_events:
                self.kernel.step()
        return self.kernel.fired_events - fired_before

    async def _admission_loop(self) -> None:
        config = self.config
        pending = self._pending
        while True:
            batch: List[Ticket] = []
            while pending and len(batch) < config.admission_batch:
                ticket = pending.popleft()
                if ticket.state is TicketState.CANCELLED:
                    self._cancelled_in_queue -= 1
                    continue
                batch.append(ticket)
            if batch:
                self._admit(batch)
            self._update_backpressure()
            if self._reallocator is not None:
                self._maybe_reallocate()
            if self._closing and not pending:
                break
            if not pending and not self.kernel.pending_events:
                # Fully idle: no queued work and no scheduled events —
                # park until the next offer (or shutdown) instead of
                # spinning the virtual clock.
                self._wake.clear()
                await self._wake.wait()
                continue
            await self.clock.tick(config.heartbeat)

    def _maybe_reallocate(self) -> None:
        """Fire a reallocation tick when the interval elapsed.

        All-idle ticks are skipped entirely: when no cluster has a waiting
        job the interval is simply re-armed, without waking the engine.
        """
        now = self.clock.now()
        interval = self.config.reallocation_interval
        if self._next_reallocation is None:
            self._next_reallocation = now + interval
            return
        if now < self._next_reallocation:
            return
        self._next_reallocation = now + interval
        if any(server.queue_length for server in self.servers):
            self._reallocator.run_once()
            self.reallocation_ticks += 1

    def _admit(self, batch: List[Ticket]) -> None:
        """Map one admission batch through the bulk MCT path."""
        self.admission_passes += 1
        jobs = [ticket.job for ticket in batch]
        chosen = self.scheduler.submit_many(jobs)
        admitted_at = self.clock.now()
        stamp = time.perf_counter()
        latencies = self._latencies
        for ticket, server in zip(batch, chosen):
            ticket.admitted_at = admitted_at
            latency = stamp - ticket._enqueued_perf
            ticket.admit_latency_s = latency
            latencies.append(latency)
            self.admitted += 1
            if server is None:
                self.rejected_unmappable += 1
                self._retire(ticket)

    def _engage_backpressure(self) -> None:
        self.backpressure_engaged = True
        self.backpressure_engagements += 1
        self._below_low_water.clear()

    def _update_backpressure(self) -> None:
        if self.backpressure_engaged and self.queue_depth <= self.config.low_water:
            self.backpressure_engaged = False
            self._below_low_water.set()

    # ------------------------------------------------------------------ #
    # Completion / retirement                                            #
    # ------------------------------------------------------------------ #
    def _on_job_completion(self, job: Job) -> None:
        self.completed += 1
        ticket = self._registry.get(job.job_id)
        if ticket is not None:
            self._retire(ticket)

    def _retire(self, ticket: Ticket) -> None:
        """Move a finished ticket into the bounded history window."""
        self._retired.append(ticket.job_id)
        retention = self.config.completed_retention
        while len(self._retired) > retention:
            job_id = self._retired.popleft()
            self._registry.pop(job_id, None)
            self.scheduler.forget_mappings(job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetaSchedulerService({self.platform.name}, clock={self.clock.mode}, "
            f"queued={self.queue_depth}, in_flight={self.in_flight})"
        )


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return math.nan
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]
