"""Columnar availability profiles.

:class:`ArrayProfile` is the NumPy-backed twin of the list-based
:class:`~repro.batch.profile.AvailabilityProfile`: the same step function
``time -> number of free processors``, stored as two parallel arrays
(``float64`` breakpoint times, ``int64`` free counts) with
capacity-doubling growth, so the planner's hot operations run as array
primitives instead of Python loops:

* :meth:`ArrayProfile.earliest_slot` finds the first feasible window via
  array comparisons plus a blocking-segment skip (open-run starts and the
  next blocking time per run come from masks and ``searchsorted``, not a
  Python inner loop), with a scalar fast path for short suffixes so FCFS
  tail placements keep their O(segments visited) cost;
* :meth:`ArrayProfile.earliest_slot_many` plans a whole batch of what-if
  queries sharing one ``earliest`` bound (the estimate storms of the grid
  layer), building the open-run structure once per distinct processor
  count;
* :meth:`ArrayProfile.release_many` gives a set of reservations back in
  one pass — union the breakpoints, sample the old step function, apply
  the interval deltas with a cumulative sum — which turns the planner's
  suffix restoration from O(suffix x breakpoints) into O(suffix +
  breakpoints);
* :meth:`ArrayProfile.checkpoint` / :meth:`ArrayProfile.rollback`
  snapshot and restore the array prefix, so a caller can mutate the live
  profile transiently (e.g. reconstructing the profile *before* a queue
  position) and return to the exact prior state.

Float identity with the list engine is a hard requirement (the paper
tables must not move by a bit): free counts are integers, breakpoint
times are only ever *copied* from inputs, compared, or passed through
``max`` — never recomputed — and every feasibility comparison uses the
same IEEE operations in the same order as the list implementation.  The
randomized differential suite (``tests/test_array_profile.py``) asserts
exact equality of breakpoints, planned starts and estimates between the
two engines; the list profile remains the oracle.

:func:`make_profile` is the engine factory used by
:class:`~repro.batch.cluster.ClusterState`; the ``--profile-engine
{auto,array,list}`` escape hatch of the CLI reaches it end-to-end
(``auto``, the default, picks the engine per scheduling policy — see
:func:`repro.batch.policies.resolve_profile_engine`).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.batch.profile import AvailabilityProfile, ProfileError

#: Valid engine names of :func:`make_profile` (first entry is the default).
PROFILE_ENGINES: Tuple[str, ...] = ("auto", "array", "list")

#: Default engine of every cluster.  ``"auto"`` selects per policy —
#: ``list`` for FCFS (tail appends, where per-call NumPy overhead loses to
#: plain Python lists), ``array`` otherwise — via
#: :func:`repro.batch.policies.resolve_profile_engine`; both concrete
#: engines stay reachable through the ``--profile-engine`` escape hatch
#: and the list engine remains the differential oracle.
DEFAULT_PROFILE_ENGINE = "auto"

#: Initial breakpoint capacity of a fresh profile (doubles on demand).
_INITIAL_CAPACITY = 16

#: Suffix lengths up to this run :meth:`ArrayProfile.earliest_slot` as a
#: plain scalar scan: FCFS placements enter the profile near its tail, and
#: a handful of Python-level segment visits beats the fixed overhead of
#: the vectorised search on short suffixes.
_SCALAR_SEGMENTS = 48


class ArrayProfile:
    """Step function of free processors over time, stored columnar.

    Drop-in behavioural twin of :class:`AvailabilityProfile` (same
    constructor, same methods, same error messages, float-identical
    results), plus the bulk operations documented in the module
    docstring.  ``_times``/``_free`` are capacity-doubling arrays whose
    first ``_size`` entries are live.
    """

    __slots__ = ("total_procs", "_times", "_free", "_size")

    def __init__(self, total_procs: int, start_time: float = 0.0) -> None:
        if total_procs < 0:
            raise ValueError(f"total_procs must be >= 0, got {total_procs}")
        self.total_procs = int(total_procs)
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._free = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._times[0] = float(start_time)
        self._free[0] = int(total_procs)
        self._size = 1

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def start_time(self) -> float:
        """Left edge of the profile."""
        return float(self._times[0])

    def breakpoints(self) -> Iterator[Tuple[float, int]]:
        """Iterate over ``(time, free_procs)`` breakpoints (Python scalars)."""
        n = self._size
        return zip(self._times[:n].tolist(), self._free[:n].tolist())

    def free_at(self, time: float) -> int:
        """Number of free processors at ``time`` (clamped to the profile start)."""
        if time <= self._times[0]:
            return int(self._free[0])
        idx = self._times[: self._size].searchsorted(time, side="right") - 1
        return int(self._free[idx])

    def min_free_over(self, start: float, end: float) -> int:
        """Minimum number of free processors over the interval ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        times = self._times[: self._size]
        start = max(start, times[0])
        i_start = int(times.searchsorted(start, side="right")) - 1
        # The segment containing ``start`` always participates, even when
        # ``end`` falls inside it (the list engine seeds its scan there).
        i_end = max(int(times.searchsorted(end, side="left")), i_start + 1)
        return int(self._free[i_start:i_end].min())

    def min_free_over_many(
        self, starts: Sequence[float], ends: Sequence[float]
    ) -> List[int]:
        """Minimum free processors over each ``[start, end)`` interval.

        The segment ranges of every query are resolved with two batched
        ``searchsorted`` calls; each minimum is then one C-level reduction
        over a contiguous slice.
        """
        if len(starts) != len(ends):
            raise ValueError("starts and ends must have the same length")
        if not starts:
            return []
        n = self._size
        times = self._times[:n]
        free = self._free[:n]
        starts_arr = np.maximum(np.asarray(starts, dtype=np.float64), times[0])
        ends_arr = np.asarray(ends, dtype=np.float64)
        lo = np.searchsorted(times, starts_arr, side="right") - 1
        hi = np.maximum(np.searchsorted(times, ends_arr, side="left"), lo + 1)
        out: List[int] = []
        for start, end, i_start, i_end in zip(starts, ends, lo, hi):
            if end <= start:
                out.append(self.free_at(start))
            else:
                out.append(int(free[i_start:i_end].min()))
        return out

    # ------------------------------------------------------------------ #
    # Storage management                                                 #
    # ------------------------------------------------------------------ #
    def _reserve(self, needed: int) -> None:
        """Grow the backing arrays (doubling) to hold ``needed`` breakpoints."""
        capacity = self._times.shape[0]
        if capacity >= needed:
            return
        while capacity < needed:
            capacity *= 2
        n = self._size
        times = np.empty(capacity, dtype=np.float64)
        free = np.empty(capacity, dtype=np.int64)
        times[:n] = self._times[:n]
        free[:n] = self._free[:n]
        self._times = times
        self._free = free

    def _insert(self, index: int, time: float, value: int) -> None:
        """Insert one breakpoint at ``index``, shifting the suffix in place."""
        n = self._size
        self._reserve(n + 1)
        times = self._times
        free = self._free
        if index < n:
            times[index + 1 : n + 1] = times[index:n]
            free[index + 1 : n + 1] = free[index:n]
        times[index] = time
        free[index] = value
        self._size = n + 1

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #
    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` (if missing) and return its index."""
        idx = int(self._times[: self._size].searchsorted(time, side="right")) - 1
        if idx < 0:
            # Before the profile start: extend the profile to the left with
            # the capacity value so reservations starting earlier are valid.
            self._insert(0, time, self.total_procs)
            return 0
        if self._times[idx] == time:
            return idx
        self._insert(idx + 1, time, int(self._free[idx]))
        return idx + 1

    def _ensure_bounds(self, start: float, end: float, i0: int, j: int):
        """Materialise the ``[start, end)`` breakpoints; return their indices.

        ``i0``/``j`` are the already-computed ``searchsorted`` positions of
        ``start`` (right, minus one) and ``end`` (left) so the interval
        mutations run two binary searches instead of four.  Equivalent to
        ``(_ensure_breakpoint(start), _ensure_breakpoint(end))``.
        """
        if i0 < 0:
            # Before the profile start: extend the profile to the left with
            # the capacity value so reservations starting earlier are valid.
            self._insert(0, start, self.total_procs)
            i_start = 0
            j += 1
        elif self._times[i0] == start:
            i_start = i0
        else:
            self._insert(i0 + 1, start, int(self._free[i0]))
            i_start = i0 + 1
            j += 1
        if not math.isfinite(end):
            return i_start, self._size
        # ``j`` is now the left-insertion point of ``end`` in the updated
        # array (the start breakpoint, < end, always lands before it).
        if j < self._size and self._times[j] == end:
            return i_start, j
        self._insert(j, end, int(self._free[j - 1]))
        return i_start, j

    def subtract(self, start: float, end: float, procs: int) -> None:
        """Remove ``procs`` free processors over ``[start, end)``.

        Raises
        ------
        ProfileError
            If the reservation would make the free count negative anywhere
            in the interval.
        """
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times = self._times[: self._size]
        i0 = int(times.searchsorted(start, side="right")) - 1
        j = int(times.searchsorted(end, side="left"))
        scan_lo = max(i0, 0)
        lowest = int(self._free[scan_lo : max(j, scan_lo + 1)].min())
        if lowest < procs:
            raise ProfileError(
                f"cannot reserve {procs} procs over [{start}, {end}): "
                f"only {lowest} free"
            )
        i_start, i_end = self._ensure_bounds(start, end, i0, j)
        self._free[i_start:i_end] -= procs

    def add(self, start: float, end: float, procs: int) -> None:
        """Release ``procs`` processors over ``[start, end)`` (inverse of subtract)."""
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times = self._times[: self._size]
        i0 = int(times.searchsorted(start, side="right")) - 1
        j = int(times.searchsorted(end, side="left"))
        i_start, i_end = self._ensure_bounds(start, end, i0, j)
        segment = self._free[i_start:i_end]
        over = np.flatnonzero(segment > self.total_procs - procs)
        if over.size:
            # Mirror the list engine bit-for-bit, including its failure
            # state: segments before the first overflow are already
            # released when the error surfaces.
            segment[: int(over[0])] += procs
            raise ProfileError(
                f"releasing {procs} procs over [{start}, {end}) exceeds capacity "
                f"{self.total_procs}"
            )
        segment += procs

    def release_many(self, reservations: Iterable[Tuple[float, float, int]]) -> None:
        """Give a whole set of ``(start, end, procs)`` reservations back at once.

        Equivalent to :meth:`add` per reservation followed by one
        :meth:`compact` — the canonical compacted representation is
        identical, and the free counts are exact integer arithmetic either
        way — but runs in O(reservations + breakpoints): union the
        breakpoint times, sample the old step function once, apply every
        interval delta with ``add.at`` and a cumulative sum.  This is the
        engine behind the planner's O(suffix) restoration.
        """
        batch = [(s, e, p) for s, e, p in reservations]
        if not batch:
            self.compact()
            return
        n = self._size
        old_times = self._times[:n]
        old_free = self._free[:n]
        starts = np.array([item[0] for item in batch], dtype=np.float64)
        ends = np.array([item[1] for item in batch], dtype=np.float64)
        procs = np.array([item[2] for item in batch], dtype=np.int64)
        if int(procs.min()) <= 0:
            raise ValueError(f"procs must be positive, got {int(procs.min())}")
        finite = np.isfinite(ends)
        times = np.unique(np.concatenate([old_times, starts, ends[finite]]))
        # Sample the old step function at every merged breakpoint; times
        # before the old left edge take the capacity value, mirroring
        # _ensure_breakpoint's left extension.
        sample = np.searchsorted(old_times, times, side="right") - 1
        free = np.where(sample < 0, self.total_procs, old_free[np.maximum(sample, 0)])
        # Interval deltas: +procs at each start, -procs at each finite end
        # (an infinite reservation never ends), accumulated left to right.
        delta = np.zeros(times.shape[0] + 1, dtype=np.int64)
        np.add.at(delta, np.searchsorted(times, starts, side="left"), procs)
        np.subtract.at(
            delta, np.searchsorted(times, ends[finite], side="left"), procs[finite]
        )
        free = free + np.cumsum(delta[:-1])
        if int(free.max()) > self.total_procs:
            raise ProfileError(
                f"releasing {len(batch)} reservations exceeds capacity "
                f"{self.total_procs}"
            )
        m = times.shape[0]
        self._reserve(m)
        self._times[:m] = times
        self._free[:m] = free
        self._size = m
        self.compact()

    # ------------------------------------------------------------------ #
    # Live-profile maintenance                                           #
    # ------------------------------------------------------------------ #
    def advance(self, now: float) -> None:
        """Move the left edge of the profile forward to ``now``.

        Breakpoints strictly in the past are dropped (one in-place shift),
        the first remaining segment is clamped to start at ``now``, and a
        first segment made redundant by the clamp is merged — exactly the
        list engine's behaviour, including its single-merge policy.
        """
        times = self._times
        if now <= times[0]:
            return
        n = self._size
        free = self._free
        idx = int(times[:n].searchsorted(now, side="right")) - 1
        if idx > 0:
            n -= idx
            times[:n] = times[idx : idx + n]
            free[:n] = free[idx : idx + n]
            self._size = n
        times[0] = now
        if n > 1 and free[1] == free[0]:
            times[1 : n - 1] = times[2:n]
            free[1 : n - 1] = free[2:n]
            self._size = n - 1

    def release(self, start: float, end: float, procs: int) -> None:
        """Give ``procs`` processors back over ``[start, end)`` on a live profile.

        Same clamping and coalescing contract as the list engine: the
        interval is clamped to the current left edge, an empty clamped
        interval is a no-op, and redundant breakpoints are compacted away.
        """
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        start = max(start, float(self._times[0]))
        if end <= start:
            return
        self.add(start, end, procs)
        self.compact()

    def set_capacity(self, new_total: int, now: float) -> None:
        """Change the cluster capacity to ``new_total`` from ``now`` on.

        See :meth:`AvailabilityProfile.set_capacity`; shrinking requires
        the delta to be free everywhere from ``now`` on.
        """
        if new_total < 0:
            raise ValueError(f"new_total must be >= 0, got {new_total}")
        self.advance(now)
        delta = new_total - self.total_procs
        if delta == 0:
            return
        start = max(now, float(self._times[0]))
        if delta > 0:
            self.total_procs = int(new_total)
            self.add(start, math.inf, delta)
        else:
            self.subtract(start, math.inf, -delta)
            self.total_procs = int(new_total)
        self.compact()

    def compact(self) -> None:
        """Drop redundant breakpoints (equal free count on both sides).

        One vectorised pass: keep the first breakpoint and every value
        change, compress in place.  The step function is unchanged.
        """
        n = self._size
        if n < 2:
            return
        free = self._free[:n]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(free[1:], free[:-1], out=keep[1:])
        m = int(keep.sum())
        if m == n:
            return
        idx = np.flatnonzero(keep)
        self._times[:m] = self._times[:n][idx]
        self._free[:m] = free[idx]
        self._size = m

    # ------------------------------------------------------------------ #
    # Snapshot / restore                                                 #
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """Snapshot of the current state (capacity + live array slices).

        The returned value is opaque; hand it back to :meth:`rollback` to
        restore the profile bit-for-bit.  Cost is one copy of the live
        prefix — O(breakpoints), independent of whatever is mutated in
        between.
        """
        n = self._size
        return (self.total_procs, self._times[:n].copy(), self._free[:n].copy())

    def rollback(self, state: Tuple[int, np.ndarray, np.ndarray]) -> None:
        """Restore a state captured by :meth:`checkpoint` (in place)."""
        total_procs, times, free = state
        m = times.shape[0]
        self._reserve(m)
        self._times[:m] = times
        self._free[:m] = free
        self._size = m
        self.total_procs = total_procs

    # ------------------------------------------------------------------ #
    # Planning queries                                                   #
    # ------------------------------------------------------------------ #
    def earliest_slot(self, procs: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``procs`` free during ``[t, t+duration)``.

        Semantics and float behaviour of
        :meth:`AvailabilityProfile.earliest_slot`.  Long suffixes run the
        vectorised search (open-run starts from a blocked mask, next
        blocking time per run via ``searchsorted``, one comparison per
        candidate); short suffixes — the FCFS tail case — fall back to the
        scalar segment walk.
        """
        if procs > self.total_procs:
            return math.inf
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        n = self._size
        times = self._times[:n]
        free = self._free[:n]
        earliest = max(earliest, float(times[0]))
        idx = int(times.searchsorted(earliest, side="right")) - 1
        if duration <= 0:
            # A zero-length reservation only needs an instant with enough
            # free processors: the first segment at/after `earliest` that
            # fits.
            open_mask = free[idx:] >= procs
            k = int(open_mask.argmax())
            if not open_mask[k]:
                return math.inf
            return max(earliest, float(times[idx + k]))
        if n - idx <= _SCALAR_SEGMENTS:
            return self._earliest_slot_scalar(
                times[idx:].tolist(), free[idx:].tolist(), procs, duration, earliest
            )
        candidates, block_times = self._open_runs(times[idx:], free[idx:], procs, earliest)
        if candidates is None:
            return math.inf
        feasible = candidates + duration <= block_times
        k = int(feasible.argmax())
        if feasible[k]:
            return float(candidates[k])
        return math.inf

    @staticmethod
    def _earliest_slot_scalar(
        times: List[float], free: List[int], procs: int, duration: float, earliest: float
    ) -> float:
        """Scalar segment walk over a (short) suffix, list-engine style."""
        count = len(times)
        idx = 0
        candidate = earliest
        while True:
            end_needed = candidate + duration
            scan = idx
            ok = True
            while scan < count:
                seg_start = times[scan]
                seg_end = times[scan + 1] if scan + 1 < count else math.inf
                if seg_end <= candidate:
                    scan += 1
                    continue
                if seg_start >= end_needed:
                    break
                if free[scan] < procs:
                    ok = False
                    candidate = seg_end
                    idx = scan + 1
                    break
                scan += 1
            if ok:
                return candidate
            if idx >= count:
                return math.inf

    @staticmethod
    def _open_runs(times, free, procs, earliest):
        """Candidate starts and their next blocking times for one ``procs``.

        ``times``/``free`` are the suffix views entered at ``earliest``.
        A *candidate* is where the scalar search would test a window: the
        clamped start of each maximal run of segments with enough free
        processors.  The window at a candidate succeeds exactly when the
        next blocking segment starts at or after its end, so the pair of
        arrays reduces every feasibility test to one comparison.
        Returns ``(None, None)`` when no open run exists.
        """
        blocked = free < procs
        open_starts = np.flatnonzero(
            ~blocked & np.concatenate(([True], blocked[:-1]))
        )
        if open_starts.size == 0:
            return None, None
        candidates = np.maximum(earliest, times[open_starts])
        blocked_idx = np.flatnonzero(blocked)
        if blocked_idx.size:
            pos = np.searchsorted(blocked_idx, open_starts)
            safe = np.minimum(pos, blocked_idx.size - 1)
            block_times = np.where(
                pos < blocked_idx.size, times[blocked_idx[safe]], math.inf
            )
        else:
            block_times = np.full(open_starts.shape, math.inf)
        return candidates, block_times

    def earliest_slot_many(
        self, procs: Sequence[int], durations: Sequence[float], earliest: float
    ) -> List[float]:
        """Batched :meth:`earliest_slot` for queries sharing one ``earliest``.

        The open-run structure is built once per distinct processor count
        (ECT storms ask about many jobs over few distinct sizes), after
        which each query is one vectorised feasibility comparison over its
        candidate list.  Results are float-identical to per-query
        :meth:`earliest_slot` calls.
        """
        if len(procs) != len(durations):
            raise ValueError("procs and durations must have the same length")
        out: List[float] = [math.inf] * len(procs)
        if not procs:
            return out
        n = self._size
        times = self._times[:n]
        free = self._free[:n]
        total = self.total_procs
        clamped = max(earliest, float(times[0]))
        idx = int(np.searchsorted(times, clamped, side="right")) - 1
        suffix_times = times[idx:]
        suffix_free = free[idx:]
        by_procs: dict = {}
        for position, p in enumerate(procs):
            by_procs.setdefault(int(p), []).append(position)
        for p, positions in by_procs.items():
            if p <= 0:
                raise ValueError(f"procs must be positive, got {p}")
            if p > total:
                continue  # stays inf
            structure = None
            for position in positions:
                duration = durations[position]
                if duration <= 0:
                    out[position] = self.earliest_slot(p, duration, earliest)
                    continue
                if structure is None:
                    structure = self._open_runs(suffix_times, suffix_free, p, clamped)
                candidates, block_times = structure
                if candidates is None:
                    continue  # stays inf
                feasible = candidates + duration <= block_times
                k = int(feasible.argmax())
                if feasible[k]:
                    out[position] = float(candidates[k])
        return out

    def reserve(self, procs: int, duration: float, earliest: float) -> float:
        """Find the earliest slot and subtract the reservation; return its start."""
        start = self.earliest_slot(procs, duration, earliest)
        if not math.isfinite(start):
            return start
        if duration > 0:
            self.subtract(start, start + duration, procs)
        return start

    # ------------------------------------------------------------------ #
    # Construction helpers                                               #
    # ------------------------------------------------------------------ #
    def copy(self) -> "ArrayProfile":
        """Independent copy (used for what-if estimation queries)."""
        clone = ArrayProfile.__new__(ArrayProfile)
        clone.total_procs = self.total_procs
        n = self._size
        clone._times = self._times[:n].copy()
        clone._free = self._free[:n].copy()
        clone._size = n
        return clone

    @classmethod
    def from_reservations(
        cls,
        total_procs: int,
        start_time: float,
        reservations: Iterable[Tuple[float, float, int]],
    ) -> "ArrayProfile":
        """Build a profile from ``(start, end, procs)`` reservations.

        Reservations ending at or before ``start_time`` are skipped, as in
        the list engine.
        """
        profile = cls(total_procs, start_time)
        for start, end, procs in reservations:
            if end <= start_time:
                continue
            profile.subtract(max(start, start_time), end, procs)
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = self._size
        points = ", ".join(
            f"({t:.0f}:{f})" for t, f in zip(self._times[:n], self._free[:n])
        )
        return f"ArrayProfile(cap={self.total_procs}, [{points}])"


def make_profile(
    engine: str, total_procs: int, start_time: float = 0.0
) -> "ArrayProfile | AvailabilityProfile":
    """Build an availability profile with the requested engine.

    ``"array"`` is the columnar engine above; ``"list"`` is the historical
    :class:`AvailabilityProfile`, kept as the differential oracle and
    reachable end-to-end through ``--profile-engine list``.  ``"auto"``
    falls back to the array engine here: policy-aware selection happens in
    :func:`repro.batch.policies.resolve_profile_engine` before the factory
    is reached, so this branch only serves callers building a profile with
    no policy in sight.
    """
    if engine in ("array", "auto"):
        return ArrayProfile(total_procs, start_time)
    if engine == "list":
        return AvailabilityProfile(total_procs, start_time)
    raise ValueError(
        f"unknown profile engine {engine!r}; expected one of {PROFILE_ENGINES}"
    )
