"""Integration tests: the paper's qualitative findings on scaled scenarios.

These tests run small but complete experiments (a few hundred jobs over two
scenarios) and check the *shape* of the paper's findings rather than its
absolute numbers:

* reallocation changes the completion time of a minority of the jobs and
  FCFS platforms show more impacted jobs than CBF platforms (Section 4.1);
* the number of reallocations is small compared to the number of jobs
  (Tables 4/5/12/13);
* averaged over configurations, more impacted jobs finish earlier than
  later and the average response time of impacted jobs improves
  (Tables 6–9, 14–17);
* Algorithm 2 (cancellation) performs at least as many reallocations as
  Algorithm 1 and improves the mean relative response time (Section 4.3).
"""

from __future__ import annotations

import statistics

import pytest

from repro.experiments.config import ExperimentConfig, SweepConfig, bench_scale
from repro.experiments.runner import ExperimentRunner

SCENARIOS = ("feb", "may")
TARGET_JOBS = 200


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def sweeps(runner):
    """Algorithm 1 and Algorithm 2 sweeps over two scenarios (homogeneous)."""
    common = dict(
        heterogeneous=False,
        scenarios=SCENARIOS,
        batch_policies=("fcfs", "cbf"),
        heuristics=("mct", "minmin", "maxgain"),
        target_jobs=TARGET_JOBS,
    )
    return {
        "standard": runner.sweep(SweepConfig(algorithm="standard", **common)),
        "cancellation": runner.sweep(SweepConfig(algorithm="cancellation", **common)),
    }


def cells(sweep, batch_policy=None):
    return [
        metrics
        for (policy, _, _), metrics in sweep.metrics.items()
        if batch_policy is None or policy == batch_policy
    ]


class TestReallocationActivity:
    def test_reallocation_happens(self, sweeps):
        for sweep in sweeps.values():
            assert sum(m.reallocations for m in cells(sweep)) > 0

    def test_reallocations_are_a_small_fraction_of_jobs(self, sweeps):
        """The paper reports 2.3 % (Algorithm 1) / 5.8 % (Algorithm 2) on average."""
        for sweep in sweeps.values():
            fractions = [m.reallocations / m.compared_jobs for m in cells(sweep)]
            assert statistics.mean(fractions) < 0.5

    def test_cancellation_moves_at_least_as_much_as_standard(self, sweeps):
        standard = sum(m.reallocations for m in cells(sweeps["standard"]))
        cancellation = sum(m.reallocations for m in cells(sweeps["cancellation"]))
        assert cancellation >= standard

    def test_some_jobs_are_impacted_but_not_all(self, sweeps):
        for sweep in sweeps.values():
            impacted = [m.pct_impacted for m in cells(sweep)]
            assert max(impacted) > 0.0
            assert statistics.mean(impacted) < 90.0


class TestFcfsVsCbf:
    def test_fcfs_has_more_impacted_jobs_than_cbf(self, sweeps):
        """CBF drains queues faster, so reallocation touches fewer jobs (Section 4.1)."""
        sweep = sweeps["standard"]
        fcfs = statistics.mean(m.pct_impacted for m in cells(sweep, "fcfs"))
        cbf = statistics.mean(m.pct_impacted for m in cells(sweep, "cbf"))
        assert fcfs >= cbf


class TestUserMetrics:
    def test_more_jobs_finish_earlier_than_later_on_average(self, sweeps):
        for name, sweep in sweeps.items():
            mean_earlier = statistics.mean(
                m.pct_earlier for m in cells(sweep) if m.impacted_jobs > 0
            )
            assert mean_earlier > 50.0, name

    def test_response_time_improves_on_average(self, sweeps):
        for name, sweep in sweeps.items():
            mean_relative = statistics.mean(m.relative_response_time for m in cells(sweep))
            assert mean_relative < 1.0, name

    def test_cancellation_improves_response_time_over_standard(self, sweeps):
        """The key Section 4.3 conclusion."""
        standard = statistics.mean(m.relative_response_time for m in cells(sweeps["standard"]))
        cancellation = statistics.mean(
            m.relative_response_time for m in cells(sweeps["cancellation"])
        )
        assert cancellation <= standard + 0.05


class TestDeterminism:
    def test_identical_configs_give_identical_metrics(self, runner):
        config = ExperimentConfig(
            scenario="feb",
            batch_policy="fcfs",
            algorithm="standard",
            heuristic="minmin",
            scale=bench_scale("feb", TARGET_JOBS),
        )
        first = runner.metrics(config)
        fresh_runner = ExperimentRunner()
        second = fresh_runner.metrics(config)
        assert first.pct_impacted == second.pct_impacted
        assert first.reallocations == second.reallocations
        assert first.relative_response_time == second.relative_response_time

    def test_heterogeneous_flavour_changes_results(self, runner):
        homog = ExperimentConfig(
            scenario="feb", batch_policy="fcfs", algorithm="standard",
            heuristic="minmin", scale=bench_scale("feb", TARGET_JOBS),
        )
        heter = ExperimentConfig(
            scenario="feb", heterogeneous=True, batch_policy="fcfs",
            algorithm="standard", heuristic="minmin",
            scale=bench_scale("feb", TARGET_JOBS),
        )
        baseline_homog = runner.baseline(homog)
        baseline_heter = runner.baseline(heter)
        # Faster clusters finish the same work earlier on average.
        assert baseline_heter.mean_response_time() < baseline_homog.mean_response_time()
