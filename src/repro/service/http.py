"""Dependency-light HTTP front of the service.

The container deliberately carries no web framework, so the listener is a
small hand-rolled HTTP/1.1 layer over ``asyncio.start_server``: enough of
the protocol for JSON request/response bodies, keep-alive connections and
the five routes the service exposes.  The matching
:class:`HTTPServiceClient` (used by ``repro bombard`` and the CI smoke)
speaks the same subset over a persistent connection.

Routes
------
* ``GET /health`` — liveness document (clock, queue depth, clusters);
* ``GET /stats`` — counter snapshot with admit-latency percentiles and,
  when the reallocation heartbeat is enabled, its tuned/cancelled/migrated
  counters under ``"reallocation"``;
* ``POST /submit`` — one job (``{"procs", "runtime", "walltime"}``) or a
  batch (``{"jobs": [...]}``); replies 202 with the assigned id(s),
  429 under backpressure, 503 when full or shutting down;
* ``GET /jobs/<id>`` — status of one submission (404 when unknown);
* ``POST /jobs/<id>/cancel`` — cancel a queued or waiting job (409 when
  it already started or finished).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.service.service import MetaSchedulerService, SubmitRejected

#: Upper bound on request heads and bodies (1 MiB is plenty for batches).
MAX_REQUEST_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: HTTP status of a refused submission, by :class:`SubmitRejected` reason.
_REJECT_STATUS = {"backpressure": 429, "queue-full": 503, "closing": 503}


class ServiceHTTP:
    """Asyncio HTTP listener exposing one :class:`MetaSchedulerService`."""

    def __init__(
        self,
        service: MetaSchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        #: requests served (all routes, errors included)
        self.requests = 0

    async def start(self) -> "ServiceHTTP":
        """Bind and start serving; ``port`` is updated when 0 was requested."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ServiceHTTP":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling                                                #
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, body = request
                self.requests += 1
                status, document = self._dispatch(method, path, body)
                payload = json.dumps(document).encode("utf-8")
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(payload)}\r\n"
                        "Connection: keep-alive\r\n\r\n"
                    ).encode("ascii")
                    + payload
                )
                await writer.drain()
        except (ConnectionError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client went away
                pass

    # ------------------------------------------------------------------ #
    # Routing                                                            #
    # ------------------------------------------------------------------ #
    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/health":
            if method != "GET":
                return 405, {"error": "health is GET-only"}
            return 200, self.service.health()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self.service.stats()
        if path == "/submit":
            if method != "POST":
                return 405, {"error": "submit is POST-only"}
            return self._submit(body)
        if path.startswith("/jobs/"):
            return self._jobs(method, path)
        return 404, {"error": f"unknown path {path!r}"}

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(document, dict):
            return 400, {"error": "submit body must be a JSON object"}
        specs = document.get("jobs")
        if specs is None:
            specs = [document]
        if not isinstance(specs, list) or not specs:
            return 400, {"error": "'jobs' must be a non-empty list"}
        job_ids: List[int] = []
        refusal: Optional[SubmitRejected] = None
        for spec in specs:
            try:
                ticket = self.service.offer(
                    procs=int(spec["procs"]),
                    runtime=float(spec["runtime"]),
                    walltime=(
                        float(spec["walltime"]) if "walltime" in spec else None
                    ),
                )
            except SubmitRejected as exc:
                refusal = exc
                break
            except (KeyError, TypeError, ValueError) as exc:
                return 400, {"error": f"invalid job spec: {exc}"}
            job_ids.append(ticket.job_id)
        if refusal is not None and not job_ids:
            return _REJECT_STATUS.get(refusal.reason, 503), {
                "error": str(refusal),
                "reason": refusal.reason,
                "job_ids": [],
            }
        response: Dict[str, object] = {
            "job_ids": job_ids,
            "accepted": len(job_ids),
            "rejected": len(specs) - len(job_ids),
        }
        if len(specs) == 1 and "jobs" not in document:
            response["job_id"] = job_ids[0]
        if refusal is not None:
            response["reason"] = refusal.reason
        return 202, response

    def _jobs(self, method: str, path: str) -> Tuple[int, Dict[str, object]]:
        parts = path.strip("/").split("/")
        # "jobs/<id>" or "jobs/<id>/cancel"
        if len(parts) < 2 or not parts[1].lstrip("-").isdigit():
            return 404, {"error": f"unknown path {path!r}"}
        job_id = int(parts[1])
        if len(parts) == 2:
            if method != "GET":
                return 405, {"error": "job status is GET-only"}
            try:
                return 200, self.service.ticket(job_id).to_dict()
            except KeyError:
                return 404, {"error": f"unknown job {job_id}"}
        if len(parts) == 3 and parts[2] == "cancel":
            if method != "POST":
                return 405, {"error": "cancel is POST-only"}
            try:
                return 200, self.service.cancel(job_id).to_dict()
            except KeyError:
                return 404, {"error": f"unknown job {job_id}"}
            except ValueError as exc:
                return 409, {"error": str(exc)}
        return 404, {"error": f"unknown path {path!r}"}


class HTTPServiceClient:
    """Minimal keep-alive JSON/HTTP client for one service endpoint."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "HTTPServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_REQUEST_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - server went away
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "HTTPServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object]]:
        """One request over the persistent connection → ``(status, document)``."""
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        self._writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: keep-alive\r\n\r\n"
            ).encode("ascii")
            + payload
        )
        await self._writer.drain()
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body_bytes = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(body_bytes or b"{}")

    # Convenience wrappers ------------------------------------------------
    async def submit(self, procs: int, runtime: float, walltime: Optional[float] = None):
        spec: Dict[str, object] = {"procs": procs, "runtime": runtime}
        if walltime is not None:
            spec["walltime"] = walltime
        return await self.request("POST", "/submit", spec)

    async def submit_batch(self, specs: List[Dict[str, object]]):
        return await self.request("POST", "/submit", {"jobs": specs})

    async def status(self, job_id: int):
        return await self.request("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: int):
        return await self.request("POST", f"/jobs/{job_id}/cancel")

    async def health(self):
        return await self.request("GET", "/health")

    async def stats(self):
        return await self.request("GET", "/stats")


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ConnectionError("truncated request head") from exc
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ConnectionError(f"malformed request line {lines[0]!r}") from exc
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError as exc:
                raise ConnectionError(f"bad Content-Length {value!r}") from exc
    if length > MAX_REQUEST_BYTES:
        raise ConnectionError(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body
