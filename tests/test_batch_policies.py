"""Tests for the FCFS and CBF planning policies."""

from __future__ import annotations

import math

import pytest

from repro.batch.policies import (
    BatchPolicy,
    get_policy,
    iter_policies,
    plan_cbf,
    plan_fcfs,
    policy_name,
)
from repro.batch.profile import AvailabilityProfile
from tests.conftest import make_job


def _profile(procs=4, busy=None):
    profile = AvailabilityProfile(procs, start_time=0.0)
    for start, end, used in busy or []:
        profile.subtract(start, end, used)
    return profile


class TestFcfs:
    def test_empty_queue(self):
        plan = plan_fcfs(_profile(), [], speed=1.0, now=0.0)
        assert len(plan) == 0

    def test_jobs_start_immediately_when_free(self):
        jobs = [make_job(1, procs=2, walltime=100.0), make_job(2, procs=2, walltime=100.0)]
        plan = plan_fcfs(_profile(4), jobs, speed=1.0, now=0.0)
        assert plan.planned_start(1) == 0.0
        assert plan.planned_start(2) == 0.0

    def test_second_job_queues_behind_first(self):
        jobs = [make_job(1, procs=4, walltime=100.0), make_job(2, procs=1, walltime=50.0)]
        plan = plan_fcfs(_profile(4), jobs, speed=1.0, now=0.0)
        assert plan.planned_start(1) == 0.0
        # FCFS: job 2 cannot start before job 1 even though a single
        # processor is conceptually available only after job 1's reservation.
        assert plan.planned_start(2) == 100.0

    def test_no_backfilling_into_holes(self):
        # Running jobs leave a hole before a big reservation, but FCFS keeps
        # queue order: the small job may not start before the big one.
        profile = _profile(4, busy=[(0.0, 100.0, 2)])
        jobs = [make_job(1, procs=4, walltime=50.0), make_job(2, procs=1, walltime=10.0)]
        plan = plan_fcfs(profile, jobs, speed=1.0, now=0.0)
        assert plan.planned_start(1) == 100.0
        # The one-processor job could run in the hole before job 1, but FCFS
        # keeps queue order: it only starts once job 1's reservation ends.
        assert plan.planned_start(2) == 150.0

    def test_starts_are_monotone_in_queue_order(self):
        jobs = [make_job(i, procs=2, walltime=60.0 * i) for i in range(1, 6)]
        plan = plan_fcfs(_profile(4), jobs, speed=1.0, now=0.0)
        starts = [plan.planned_start(i) for i in range(1, 6)]
        assert starts == sorted(starts)

    def test_planned_end_uses_walltime_scaled_by_speed(self):
        jobs = [make_job(1, procs=1, walltime=100.0)]
        plan = plan_fcfs(_profile(4), jobs, speed=2.0, now=0.0)
        assert plan.planned_end(1) == pytest.approx(50.0)

    def test_oversized_job_gets_infinite_start(self):
        jobs = [make_job(1, procs=10, walltime=100.0)]
        plan = plan_fcfs(_profile(4), jobs, speed=1.0, now=0.0)
        assert plan.planned_start(1) == math.inf
        assert not plan.get(1).is_feasible()


class TestCbf:
    def test_backfills_small_job_into_hole(self):
        profile = _profile(4, busy=[(0.0, 100.0, 2)])
        jobs = [make_job(1, procs=4, walltime=50.0), make_job(2, procs=1, walltime=10.0)]
        plan = plan_cbf(profile, jobs, speed=1.0, now=0.0)
        assert plan.planned_start(1) == 100.0
        # CBF: the one-processor job slides into the hole before job 1.
        assert plan.planned_start(2) == 0.0

    def test_backfilling_never_delays_earlier_reservation(self):
        profile = _profile(4, busy=[(0.0, 100.0, 2)])
        jobs = [
            make_job(1, procs=4, walltime=50.0),
            make_job(2, procs=2, walltime=200.0),
        ]
        plan = plan_cbf(profile, jobs, speed=1.0, now=0.0)
        # Job 2 would delay job 1 if it started at t=0 (it would still hold
        # its processors at t=100); it must therefore start after job 1.
        assert plan.planned_start(1) == 100.0
        assert plan.planned_start(2) == 150.0

    def test_cbf_equals_fcfs_when_no_holes(self):
        jobs = [make_job(i, procs=4, walltime=100.0) for i in range(1, 4)]
        fcfs = plan_fcfs(_profile(4), jobs, speed=1.0, now=0.0)
        cbf = plan_cbf(_profile(4), jobs, speed=1.0, now=0.0)
        for i in range(1, 4):
            assert fcfs.planned_start(i) == cbf.planned_start(i)

    def test_cbf_starts_not_necessarily_monotone(self):
        profile = _profile(4, busy=[(0.0, 100.0, 2)])
        jobs = [make_job(1, procs=4, walltime=50.0), make_job(2, procs=1, walltime=10.0)]
        plan = plan_cbf(profile, jobs, speed=1.0, now=0.0)
        assert plan.planned_start(2) < plan.planned_start(1)


class TestPolicyRegistry:
    def test_get_policy_by_enum(self):
        assert get_policy(BatchPolicy.FCFS) is plan_fcfs
        assert get_policy(BatchPolicy.CBF) is plan_cbf

    def test_get_policy_by_name(self):
        assert get_policy("fcfs") is plan_fcfs
        assert get_policy("CBF") is plan_cbf

    def test_get_policy_unknown_name(self):
        with pytest.raises(ValueError):
            get_policy("easy-backfilling")

    def test_iter_policies(self):
        policies = dict(iter_policies())
        assert set(policies) == {BatchPolicy.FCFS, BatchPolicy.CBF}

    def test_policy_name(self):
        assert policy_name(BatchPolicy.FCFS) == "FCFS"
        assert policy_name(plan_cbf) == "CBF"

    def test_str_of_policy_enum(self):
        assert str(BatchPolicy.FCFS) == "FCFS"
        assert str(BatchPolicy.CBF) == "CBF"


class TestPlanObject:
    def test_duplicate_job_rejected(self):
        from repro.batch.schedule import ClusterPlan, PlannedJob

        plan = ClusterPlan("alpha", computed_at=0.0)
        plan.add(PlannedJob(1, 2, 0.0, 10.0))
        with pytest.raises(ValueError):
            plan.add(PlannedJob(1, 2, 5.0, 15.0))

    def test_missing_job_queries(self):
        from repro.batch.schedule import ClusterPlan

        plan = ClusterPlan("alpha", computed_at=0.0)
        assert plan.get(42) is None
        assert plan.planned_start(42) == math.inf
        assert plan.planned_end(42) == math.inf
        assert 42 not in plan

    def test_startable_now(self):
        from repro.batch.schedule import ClusterPlan, PlannedJob

        plan = ClusterPlan("alpha", computed_at=5.0)
        plan.add(PlannedJob(1, 2, 5.0, 10.0))
        plan.add(PlannedJob(2, 2, 7.0, 12.0))
        startable = plan.startable_now()
        assert [p.job_id for p in startable] == [1]

    def test_planned_duration(self):
        from repro.batch.schedule import PlannedJob

        entry = PlannedJob(1, 2, 5.0, 15.0)
        assert entry.planned_duration == 10.0
