"""Reallocation-tick microbenchmark: estimate-table build cost.

Algorithm 2 cancels every waiting job of the grid, then resubmits them one
by one; the cost of a tick is dominated by the per-cluster completion-time
estimates of the cancelled set.  The historical table build estimated the
origin cluster of every candidate *twice* — once in the pre-loop (for the
``current_ect`` argument) and once more inside :meth:`_EstimateTable.add`,
which recomputes every fitting cluster because a cancelled job is no
longer ``WAITING``.  Building the tick's table directly from the cancelled
set (:meth:`_EstimateTable.add_cancelled`) computes every (job, cluster)
estimate exactly once: with ``C`` clusters the build drops from ``C + 1``
to ``C`` estimates per candidate.

Both builds must materialise *identical* estimates; the benchmark then
asserts the single-pass build is at least ``MIN_SPEEDUP``× faster on a
two-cluster platform (theoretical ratio 1.5×) and publishes the timings
as ``BENCH_realloc.json`` at the repository root (uploaded as a CI
artifact).
"""

from __future__ import annotations

import random
from pathlib import Path

from perfutil import best_of, speedup as wall_speedup

from repro.analysis.benchio import dump_bench_report
from repro.batch.job import Job
from repro.batch.server import BatchServer
from repro.grid.reallocation import _EstimateTable
from repro.sim.kernel import SimulationKernel

#: Waiting jobs cancelled per cluster at the benchmarked tick.
QUEUE_DEPTH = 2000
#: Clusters of the benchmark platform (ratio (C + 1) / C = 1.5 at C = 2).
CLUSTERS = 2
#: Required reference/single-pass wall-clock ratio.
MIN_SPEEDUP = 1.2

TOTAL_PROCS = 64
BENCH_SEED = 20100326


def build_grid():
    """A grid mid-experiment: full clusters, deep queues, all cancelled."""
    rng = random.Random(BENCH_SEED)
    kernel = SimulationKernel()
    servers = [
        BatchServer(kernel, f"cluster{i}", TOTAL_PROCS, 1.0, policy="fcfs")
        for i in range(CLUSTERS)
    ]
    by_name = {server.name: server for server in servers}
    # One blocker pins every processor of each cluster so the queues stay
    # deep for the whole build.
    for i, server in enumerate(servers):
        server.submit(
            Job(job_id=10_000 + i, submit_time=0.0, procs=TOTAL_PROCS,
                runtime=90_000.0, walltime=100_000.0)
        )
    waiting = []
    for i in range(QUEUE_DEPTH * CLUSTERS):
        job = Job(
            job_id=i,
            submit_time=0.0,
            procs=rng.randint(1, 32),
            runtime=float(rng.randint(100, 4000)),
            walltime=float(rng.randint(500, 5000)),
        )
        servers[i % CLUSTERS].submit(job)
        waiting.append(job)
    # The Algorithm 2 pre-loop: remember the origin and cancel everywhere.
    # Cancelling back-to-front reaches the same all-cancelled state as the
    # agent's front-to-back order while keeping every cancel a cheap
    # tail-suffix replan, so the benchmark setup stays linear.
    previous_cluster = {}
    for job in waiting:
        previous_cluster[job.job_id] = job.cluster
    for job in reversed(waiting):
        by_name[job.cluster].cancel(job)
    return servers, by_name, waiting, previous_cluster


def build_reference(servers, by_name, cancelled, previous_cluster):
    """Historical build: pre-loop origin estimate + per-cluster re-estimates."""
    table = _EstimateTable(servers)
    for job in cancelled:
        origin = previous_cluster[job.job_id]
        origin_ect = by_name[origin].estimate_completion(job)
        table.add(job, origin, origin_ect)
    return table


def build_single_pass(servers, by_name, cancelled, previous_cluster):
    """The agent's build since the refactor: one estimate per (job, cluster)."""
    table = _EstimateTable(servers)
    for job in cancelled:
        table.add_cancelled(job, previous_cluster[job.job_id])
    return table


def tables_identical(left, right, job_ids):
    for a, b in zip(left.estimates(job_ids), right.estimates(job_ids)):
        if a.job.job_id != b.job.job_id:
            return False
        if (a.current_cluster, a.current_ect) != (b.current_cluster, b.current_ect):
            return False
        if a.ects != b.ects:
            return False
    return True


def test_cancellation_table_build_speedup():
    servers, by_name, cancelled, previous_cluster = build_grid()
    job_ids = [job.job_id for job in cancelled]

    # Estimate queries are pure, so both builds run against the same live
    # state.  Best-of-three timings per build keep the speedup assertion
    # robust against noisy shared CI runners.
    reference_s, reference = best_of(
        3, build_reference, servers, by_name, cancelled, previous_cluster
    )
    single_pass_s, single_pass = best_of(
        3, build_single_pass, servers, by_name, cancelled, previous_cluster
    )

    assert tables_identical(reference, single_pass, job_ids), (
        "single-pass estimate table diverged from the reference build"
    )

    speedup = wall_speedup(reference_s, single_pass_s)
    report = {
        "queue_depth": QUEUE_DEPTH,
        "clusters": CLUSTERS,
        "cancelled_jobs": len(cancelled),
        "min_speedup": MIN_SPEEDUP,
        "reference_s": round(reference_s, 4),
        "single_pass_s": round(single_pass_s, 4),
        "speedup": round(speedup, 2),
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_realloc.json"
    dump_bench_report(out_path, report)
    print(
        f"\nestimate-table build over {len(cancelled)} cancelled jobs: "
        f"reference {reference_s:.3f}s, single-pass {single_pass_s:.3f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"estimate-table speedup {speedup:.2f}x below the {MIN_SPEEDUP}x "
        "acceptance floor"
    )
