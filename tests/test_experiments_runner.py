"""Tests for the experiment runner and its caches."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.runner import ExperimentRunner, SweepResult, shared_runner

SMALL_SCALE = 0.004  # ~55 jobs for the jan scenario: fast but non-trivial


@pytest.fixture
def runner():
    return ExperimentRunner()


def config(**overrides):
    defaults = dict(
        scenario="jan",
        batch_policy="fcfs",
        algorithm="standard",
        heuristic="minmin",
        scale=SMALL_SCALE,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestWorkloadCache:
    def test_same_key_returns_equal_fresh_copies(self, runner):
        first = runner.workload(config())
        second = runner.workload(config(algorithm="cancellation", heuristic="mct"))
        assert [j.job_id for j in first] == [j.job_id for j in second]
        assert [j.runtime for j in first] == [j.runtime for j in second]
        # fresh copies: distinct objects in pristine state
        assert first[0] is not second[0]

    def test_different_scenarios_differ(self, runner):
        jan = runner.workload(config())
        feb = runner.workload(config(scenario="feb"))
        assert [j.runtime for j in jan] != [j.runtime for j in feb]


class TestRunCache:
    def test_run_is_cached(self, runner):
        cfg = config()
        first = runner.run(cfg)
        assert runner.cached_runs >= 1
        second = runner.run(cfg)
        assert first is second

    def test_baseline_run_has_no_reallocations(self, runner):
        baseline = runner.baseline(config())
        assert baseline.total_reallocations == 0
        assert baseline.reallocation_events == 0

    def test_metrics_requires_reallocation_config(self, runner):
        with pytest.raises(ValueError):
            runner.metrics(config(algorithm=None, heuristic="mct"))

    def test_metrics_cached_and_consistent(self, runner):
        cfg = config()
        metrics_a = runner.metrics(cfg)
        metrics_b = runner.metrics(cfg)
        assert metrics_a is metrics_b
        assert 0.0 <= metrics_a.pct_impacted <= 100.0

    def test_clear_empties_caches(self, runner):
        runner.run(config())
        runner.clear()
        assert runner.cached_runs == 0

    def test_result_metadata_includes_scenario(self, runner):
        result = runner.run(config())
        assert result.metadata["scenario"] == "jan"
        assert result.metadata["scale"] == SMALL_SCALE


class TestSweep:
    def test_small_sweep(self, runner):
        sweep_config = SweepConfig(
            algorithm="standard",
            heterogeneous=False,
            scenarios=("jan",),
            batch_policies=("fcfs",),
            heuristics=("mct", "minmin"),
            target_jobs=60,
        )
        sweep = runner.sweep(sweep_config)
        assert isinstance(sweep, SweepResult)
        assert len(sweep.metrics) == 2
        cell = sweep.get("fcfs", "mct", "jan")
        assert cell.compared_jobs > 0
        assert set(sweep.cells()) == {("fcfs", "mct", "jan"), ("fcfs", "minmin", "jan")}

    def test_sweep_shares_baselines(self, runner):
        sweep_config = SweepConfig(
            algorithm="standard",
            heterogeneous=False,
            scenarios=("jan",),
            batch_policies=("fcfs",),
            heuristics=("mct", "minmin", "maxmin"),
            target_jobs=60,
        )
        runner.sweep(sweep_config)
        # 3 reallocation runs + 1 shared baseline
        assert runner.cached_runs == 4


def test_shared_runner_is_singleton():
    assert shared_runner() is shared_runner()
