"""Tests for the meta-scheduler (agent) mapping policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.job import JobState
from repro.grid.metascheduler import MappingPolicy, MetaScheduler
from tests.conftest import make_job, make_server


def build_servers(kernel, sizes=(4, 8), speeds=(1.0, 1.0), policy="fcfs"):
    names = ["alpha", "beta", "gamma", "delta"]
    return [
        make_server(kernel, names[i], procs=size, speed=speeds[i], policy=policy)
        for i, size in enumerate(sizes)
    ]


class TestMct:
    def test_chooses_emptier_cluster(self, kernel):
        servers = build_servers(kernel)
        scheduler = MetaScheduler(servers)
        # Fill alpha with a long job so beta gives the better ECT.
        servers[0].submit(make_job(100, procs=4, runtime=1000.0, walltime=1000.0))
        job = make_job(1, procs=4, runtime=100.0, walltime=100.0)
        chosen = scheduler.submit(job)
        assert chosen.name == "beta"
        assert job.cluster == "beta"
        assert scheduler.initial_mapping[1] == "beta"

    def test_chooses_faster_cluster_when_both_empty(self, kernel):
        servers = build_servers(kernel, speeds=(1.0, 2.0))
        scheduler = MetaScheduler(servers)
        job = make_job(1, procs=2, runtime=100.0, walltime=100.0)
        chosen = scheduler.submit(job)
        assert chosen.name == "beta"

    def test_skips_clusters_that_are_too_small(self, kernel):
        servers = build_servers(kernel, sizes=(4, 8))
        scheduler = MetaScheduler(servers)
        job = make_job(1, procs=6, runtime=10.0, walltime=20.0)
        chosen = scheduler.submit(job)
        assert chosen.name == "beta"

    def test_rejects_job_fitting_nowhere(self, kernel):
        servers = build_servers(kernel, sizes=(4, 8))
        rejected = []
        scheduler = MetaScheduler(servers, on_reject=rejected.append)
        job = make_job(1, procs=100)
        assert scheduler.submit(job) is None
        assert job.state is JobState.REJECTED
        assert rejected == [job]
        assert scheduler.rejected_count == 1

    def test_estimate_all(self, kernel):
        servers = build_servers(kernel)
        scheduler = MetaScheduler(servers)
        job = make_job(1, procs=2, runtime=50.0, walltime=100.0)
        estimates = scheduler.estimate_all(job)
        assert set(estimates) == {"alpha", "beta"}
        assert estimates["alpha"] == pytest.approx(100.0)

    def test_submitted_counter(self, kernel):
        servers = build_servers(kernel)
        scheduler = MetaScheduler(servers)
        for i in range(3):
            scheduler.submit(make_job(i, procs=1, runtime=10.0))
        assert scheduler.submitted_count == 3


class TestRoundRobin:
    def test_cycles_over_clusters(self, kernel):
        servers = build_servers(kernel, sizes=(8, 8))
        scheduler = MetaScheduler(servers, policy=MappingPolicy.ROUND_ROBIN)
        chosen = [scheduler.submit(make_job(i, procs=1, runtime=10.0)).name for i in range(4)]
        assert chosen == ["alpha", "beta", "alpha", "beta"]

    def test_skips_too_small_cluster(self, kernel):
        servers = build_servers(kernel, sizes=(2, 8))
        scheduler = MetaScheduler(servers, policy="round_robin")
        chosen = [scheduler.submit(make_job(i, procs=4, runtime=10.0)).name for i in range(3)]
        assert chosen == ["beta", "beta", "beta"]


class TestRandom:
    def test_random_is_seeded(self, kernel):
        servers = build_servers(kernel, sizes=(8, 8))
        scheduler_a = MetaScheduler(servers, policy="random", rng=np.random.default_rng(7))
        picks_a = [scheduler_a._choose(make_job(i, procs=1)).name for i in range(10)]
        scheduler_b = MetaScheduler(servers, policy="random", rng=np.random.default_rng(7))
        picks_b = [scheduler_b._choose(make_job(i, procs=1)).name for i in range(10)]
        assert picks_a == picks_b

    def test_random_only_uses_eligible_clusters(self, kernel):
        servers = build_servers(kernel, sizes=(2, 8))
        scheduler = MetaScheduler(servers, policy="random", rng=np.random.default_rng(0))
        for i in range(10):
            chosen = scheduler.submit(make_job(i, procs=4, runtime=1.0))
            assert chosen.name == "beta"


class TestLoadBasedPolicies:
    def test_less_jobs_in_queue_prefers_shorter_queue(self, kernel):
        servers = build_servers(kernel, sizes=(8, 8))
        # alpha: one running job and two queued; beta: one running job only.
        servers[0].submit(make_job(100, procs=8, runtime=1000.0, walltime=1000.0))
        servers[0].submit(make_job(101, procs=8, runtime=10.0, walltime=10.0))
        servers[0].submit(make_job(102, procs=8, runtime=10.0, walltime=10.0))
        servers[1].submit(make_job(103, procs=8, runtime=2000.0, walltime=2000.0))
        scheduler = MetaScheduler(servers, policy="less_jobs_in_queue")
        chosen = scheduler.submit(make_job(1, procs=4, runtime=10.0))
        assert chosen.name == "beta"

    def test_less_work_left_prefers_lighter_cluster(self, kernel):
        servers = build_servers(kernel, sizes=(8, 8))
        # alpha has much more declared work than beta despite equal queue lengths.
        servers[0].submit(make_job(100, procs=8, runtime=5000.0, walltime=5000.0))
        servers[0].submit(make_job(101, procs=8, runtime=5000.0, walltime=5000.0))
        servers[1].submit(make_job(102, procs=8, runtime=100.0, walltime=100.0))
        servers[1].submit(make_job(103, procs=8, runtime=100.0, walltime=100.0))
        scheduler = MetaScheduler(servers, policy="less_work_left")
        chosen = scheduler.submit(make_job(1, procs=4, runtime=10.0))
        assert chosen.name == "beta"

    def test_load_policies_skip_undersized_clusters(self, kernel):
        servers = build_servers(kernel, sizes=(2, 8))
        for index, policy in enumerate(("less_jobs_in_queue", "less_work_left")):
            scheduler = MetaScheduler(servers, policy=policy)
            chosen = scheduler.submit(make_job(500 + index, procs=4, runtime=10.0))
            assert chosen.name == "beta"

    def test_work_left_accounts_for_running_and_waiting(self, kernel):
        server = make_server(kernel, "alpha", procs=4)
        assert server.work_left() == 0.0
        server.submit(make_job(1, procs=4, runtime=100.0, walltime=100.0))   # running
        server.submit(make_job(2, procs=2, runtime=50.0, walltime=80.0))     # waiting
        assert server.work_left() == pytest.approx(4 * 100.0 + 2 * 80.0)


class TestConstruction:
    def test_requires_servers(self):
        with pytest.raises(ValueError):
            MetaScheduler([])

    def test_policy_from_string(self, kernel):
        scheduler = MetaScheduler(build_servers(kernel), policy="mct")
        assert scheduler.policy is MappingPolicy.MCT

    def test_server_by_name(self, kernel):
        scheduler = MetaScheduler(build_servers(kernel))
        assert scheduler.server_by_name("beta").name == "beta"
        with pytest.raises(KeyError):
            scheduler.server_by_name("nope")


class TestSubmitMany:
    def test_batch_of_one_matches_scalar(self, kernel):
        batch_servers = build_servers(kernel)
        batch_scheduler = MetaScheduler(batch_servers)
        serial_servers = build_servers(kernel)
        serial_scheduler = MetaScheduler(serial_servers)
        job_a = make_job(1, procs=4, runtime=100.0, walltime=100.0)
        job_b = make_job(1, procs=4, runtime=100.0, walltime=100.0)
        [batch_chosen] = batch_scheduler.submit_many([job_a])
        serial_chosen = serial_scheduler.submit(job_b)
        assert batch_chosen.name == serial_chosen.name
        # An empty cluster starts the job in the same submit pass.
        assert job_a.state is job_b.state

    def test_non_mct_policies_defer_to_scalar_path(self, kernel):
        servers = build_servers(kernel, sizes=(8, 8))
        scheduler = MetaScheduler(servers, policy=MappingPolicy.ROUND_ROBIN)
        jobs = [make_job(i, procs=1) for i in range(1, 5)]
        chosen = scheduler.submit_many(jobs)
        assert [server.name for server in chosen] == ["alpha", "beta"] * 2

    def test_burst_spreads_over_equivalent_clusters(self, kernel):
        # Two identical empty clusters: without load feedback every job of
        # the burst would herd onto the first (snapshot argmin); with it
        # the batch spreads over both.
        servers = build_servers(kernel, sizes=(8, 8))
        scheduler = MetaScheduler(servers)
        jobs = [make_job(i, procs=4, runtime=100.0, walltime=100.0)
                for i in range(1, 9)]
        chosen = scheduler.submit_many(jobs)
        names = {server.name for server in chosen}
        assert names == {"alpha", "beta"}

    def test_unmappable_jobs_rejected_in_batch(self, kernel):
        servers = build_servers(kernel, sizes=(4, 8))
        rejected = []
        scheduler = MetaScheduler(servers, on_reject=rejected.append)
        jobs = [
            make_job(1, procs=2),
            make_job(2, procs=100),  # fits nowhere
            make_job(3, procs=2),
        ]
        chosen = scheduler.submit_many(jobs)
        assert chosen[0] is not None and chosen[2] is not None
        assert chosen[1] is None
        assert jobs[1].state is JobState.REJECTED
        assert [job.job_id for job in rejected] == [2]
        assert scheduler.rejected_count == 1
        assert scheduler.submitted_count == 2

    def test_batch_matches_server_queues(self, kernel):
        servers = build_servers(kernel)
        scheduler = MetaScheduler(servers)
        jobs = [make_job(i, procs=1) for i in range(1, 33)]
        chosen = scheduler.submit_many(jobs)
        for job, server in zip(jobs, chosen):
            assert server.has_waiting(job) or server.cluster.is_running(job.job_id)
            assert scheduler.initial_mapping[job.job_id] == server.name


class TestMappingRetention:
    def test_unbounded_by_default(self, kernel):
        scheduler = MetaScheduler(build_servers(kernel, sizes=(64, 64)))
        for i in range(1, 101):
            scheduler.submit(make_job(i, procs=1))
        assert len(scheduler.initial_mapping) == 100

    def test_retention_caps_mapping_and_evicts_oldest(self, kernel):
        scheduler = MetaScheduler(
            build_servers(kernel, sizes=(64, 64)), mapping_retention=10
        )
        for i in range(1, 101):
            scheduler.submit(make_job(i, procs=1))
        assert len(scheduler.initial_mapping) == 10
        assert sorted(scheduler.initial_mapping) == list(range(91, 101))

    def test_negative_retention_rejected(self, kernel):
        with pytest.raises(ValueError):
            MetaScheduler(build_servers(kernel), mapping_retention=-1)

    def test_forget_mappings(self, kernel):
        scheduler = MetaScheduler(build_servers(kernel, sizes=(64, 64)))
        for i in range(1, 6):
            scheduler.submit(make_job(i, procs=1))
        scheduler.forget_mappings(3)
        scheduler.forget_mappings([1, 2, 999])  # unknown ids are ignored
        assert sorted(scheduler.initial_mapping) == [4, 5]


class TestUniqueNames:
    def test_duplicate_cluster_names_rejected(self, kernel):
        servers = [make_server(kernel, "alpha"), make_server(kernel, "alpha")]
        with pytest.raises(ValueError):
            MetaScheduler(servers)
