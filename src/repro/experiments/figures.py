"""Builders for Figures 1 and 2 of the paper.

The two figures of the paper are illustrative schedules rather than
measured results:

* **Figure 1** shows the mechanism: two homogeneous clusters, one with a
  long waiting queue and one whose running job finished before its
  walltime; at the reallocation event the waiting jobs *h* and *i* migrate
  to the less loaded cluster.  :func:`figure1_example` reconstructs exactly
  that situation with the real simulator objects and returns the planned
  schedules before and after the reallocation event.
* **Figure 2** shows the side effects: because plans are built from
  over-estimated walltimes, a reallocation can advance some jobs and delay
  others.  :func:`figure2_side_effects` runs a small scenario with and
  without reallocation and classifies every impacted job as advanced or
  delayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.batch.job import Job
from repro.batch.server import BatchServer
from repro.core.metrics import compare_runs
from repro.grid.reallocation import ReallocationAgent
from repro.grid.simulation import GridSimulation
from repro.platform.catalog import grid5000_platform
from repro.platform.spec import ClusterSpec, PlatformSpec
from repro.sim.kernel import SimulationKernel
from repro.workload.scenarios import get_scenario


# --------------------------------------------------------------------- #
# Figure 1: the reallocation mechanism                                   #
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class GanttEntry:
    """One bar of a Gantt chart: a job occupying processors over an interval."""

    job_label: str
    job_id: int
    cluster: str
    procs: int
    start: float
    end: float
    kind: str  # "running" or "planned"


@dataclass(frozen=True, slots=True)
class GanttSnapshot:
    """State of every cluster at one instant (running + planned jobs)."""

    time: float
    entries: Tuple[GanttEntry, ...]

    def for_cluster(self, cluster: str) -> List[GanttEntry]:
        """Entries of one cluster, ordered by start time."""
        return sorted(
            (entry for entry in self.entries if entry.cluster == cluster),
            key=lambda entry: (entry.start, entry.job_id),
        )


@dataclass(frozen=True, slots=True)
class Figure1Result:
    """Before/after schedules of the Figure 1 example."""

    before: GanttSnapshot
    after: GanttSnapshot
    moved_job_labels: Tuple[str, ...]
    description: str


_FIGURE1_LABELS: Dict[int, str] = {
    1: "a", 2: "b", 6: "f", 7: "g", 8: "h", 9: "i", 10: "j",
}


def _snapshot(servers: List[BatchServer], labels: Dict[int, str], time: float) -> GanttSnapshot:
    entries: List[GanttEntry] = []
    for server in servers:
        for running in server.running_snapshot():
            entries.append(
                GanttEntry(
                    job_label=labels.get(running.job.job_id, str(running.job.job_id)),
                    job_id=running.job.job_id,
                    cluster=server.name,
                    procs=running.procs,
                    start=running.start_time,
                    end=running.walltime_end,
                    kind="running",
                )
            )
        plan = server.planned_schedule()
        for planned in plan:
            entries.append(
                GanttEntry(
                    job_label=labels.get(planned.job_id, str(planned.job_id)),
                    job_id=planned.job_id,
                    cluster=server.name,
                    procs=planned.procs,
                    start=planned.planned_start,
                    end=planned.planned_end,
                    kind="planned",
                )
            )
    return GanttSnapshot(time=time, entries=tuple(entries))


def figure1_example(heuristic: str = "mct") -> Figure1Result:
    """Reconstruct the two-cluster reallocation example of Figure 1.

    Two homogeneous 4-processor clusters.  Cluster 1 runs jobs *a* and *b*
    and queues *g*, *h*, *i*; cluster 2 runs job *f*, which finishes well
    before its walltime, letting the queued job *j* start early.  At the
    reallocation event (one hour in) jobs *h* and *i* obtain a better
    expected completion time on cluster 2 and migrate, as in the paper.
    """
    kernel = SimulationKernel()
    cluster1 = BatchServer(kernel, "cluster1", total_procs=4, policy="fcfs")
    cluster2 = BatchServer(kernel, "cluster2", total_procs=4, policy="fcfs")
    servers = [cluster1, cluster2]

    def job(job_id: int, procs: int, runtime: float, walltime: float) -> Job:
        return Job(job_id=job_id, submit_time=0.0, procs=procs, runtime=runtime, walltime=walltime)

    # Cluster 1: fully busy for two hours, three jobs queued behind.
    job_a = job(1, 2, 7200.0, 7200.0)
    job_b = job(2, 2, 7200.0, 7200.0)
    job_g = job(7, 4, 7200.0, 7200.0)
    job_h = job(8, 2, 3600.0, 3600.0)
    job_i = job(9, 2, 3600.0, 3600.0)
    # Cluster 2: job f declared three hours but finishes after 30 minutes,
    # releasing the whole cluster to the queued job j.
    job_f = job(6, 4, 1800.0, 10800.0)
    job_j = job(10, 4, 7200.0, 7200.0)

    for item in (job_a, job_b, job_g, job_h, job_i):
        cluster1.submit(item)
    for item in (job_f, job_j):
        cluster2.submit(item)

    reallocation_time = 3600.0
    kernel.run(until=reallocation_time)
    before = _snapshot(servers, _FIGURE1_LABELS, kernel.now)

    agent = ReallocationAgent(kernel, servers, heuristic=heuristic, algorithm="standard")
    moved_before = {j.job_id: j.cluster for j in cluster1.waiting_jobs() + cluster2.waiting_jobs()}
    agent.run_once()
    after = _snapshot(servers, _FIGURE1_LABELS, kernel.now)

    moved_labels = tuple(
        _FIGURE1_LABELS[job_id]
        for job_id, previous in sorted(moved_before.items())
        for current in [_find_cluster(servers, job_id)]
        if current is not None and current != previous
    )
    description = (
        "Job f on cluster 2 finished before its walltime, so job j started "
        "early and cluster 2 drains ahead of plan; at the reallocation event "
        f"jobs {', '.join(moved_labels) or '(none)'} migrate from cluster 1 to cluster 2."
    )
    return Figure1Result(
        before=before,
        after=after,
        moved_job_labels=moved_labels,
        description=description,
    )


def _find_cluster(servers: List[BatchServer], job_id: int) -> str | None:
    for server in servers:
        if any(j.job_id == job_id for j in server.waiting_jobs()):
            return server.name
        if server.cluster.is_running(job_id):
            return server.name
    return None


# --------------------------------------------------------------------- #
# Figure 2: side effects of a reallocation                               #
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class JobDelta:
    """Completion-time change of one job between baseline and reallocation."""

    job_id: int
    baseline_completion: float
    realloc_completion: float

    @property
    def delta(self) -> float:
        """Positive when the job finishes later with reallocation."""
        return self.realloc_completion - self.baseline_completion


@dataclass(frozen=True, slots=True)
class Figure2Result:
    """Advanced and delayed jobs of a reallocation run (Figure 2)."""

    advanced: Tuple[JobDelta, ...]
    delayed: Tuple[JobDelta, ...]
    total_jobs: int
    reallocations: int
    description: str

    @property
    def impacted(self) -> int:
        """Number of jobs whose completion time changed."""
        return len(self.advanced) + len(self.delayed)


def figure2_side_effects(
    scenario_name: str = "may",
    scale: float = 0.02,
    heuristic: str = "mct",
    seed: int = 20100326,
) -> Figure2Result:
    """Quantify the side effects illustrated by Figure 2.

    Runs a small scenario with and without reallocation (Algorithm 1,
    FCFS, homogeneous platform) and classifies every impacted job as
    *advanced* (finishes earlier with reallocation) or *delayed* (finishes
    later), which is exactly the phenomenon Figure 2 illustrates: because
    plans are built from over-estimated walltimes, migrating a job frees
    space some jobs exploit while others are pushed back.
    """
    platform = grid5000_platform(heterogeneous=False)
    scenario = get_scenario(scenario_name)
    jobs = scenario.generate(platform, scale=scale, seed=seed)

    baseline = GridSimulation(
        platform, [j.copy() for j in jobs], batch_policy="fcfs"
    ).run()
    realloc = GridSimulation(
        platform,
        [j.copy() for j in jobs],
        batch_policy="fcfs",
        reallocation="standard",
        heuristic=heuristic,
    ).run()

    # Align the completion columns of the two runs by job id and classify
    # the impacted set with array comparisons; only the (few) impacted
    # jobs are materialised as JobDelta objects.
    base_ids, base_comp = baseline.to_table().completion_by_job_id()
    re_ids, re_comp = realloc.to_table().completion_by_job_id()
    _, base_idx, re_idx = np.intersect1d(
        base_ids, re_ids, assume_unique=True, return_indices=True
    )
    common_ids = base_ids[base_idx]
    base_common = base_comp[base_idx]
    re_common = re_comp[re_idx]
    deltas = re_common - base_common

    def _deltas(mask: "np.ndarray") -> List[JobDelta]:
        return [
            JobDelta(int(job_id), base_done, re_done)
            for job_id, base_done, re_done in zip(
                common_ids[mask].tolist(),
                base_common[mask].tolist(),
                re_common[mask].tolist(),
            )
        ]

    advanced = _deltas(deltas < -1e-6)
    delayed = _deltas(deltas > 1e-6)
    metrics = compare_runs(baseline, realloc)
    description = (
        f"Scenario {scenario_name} at scale {scale}: {metrics.reallocations} reallocations "
        f"changed the completion time of {metrics.impacted_jobs} jobs; "
        f"{len(advanced)} finished earlier and {len(delayed)} later — the side effect "
        "Figure 2 illustrates."
    )
    return Figure2Result(
        advanced=tuple(advanced),
        delayed=tuple(delayed),
        total_jobs=len(jobs),
        reallocations=metrics.reallocations,
        description=description,
    )


# --------------------------------------------------------------------- #
# A tiny two-cluster platform reused by the examples and the tests       #
# --------------------------------------------------------------------- #
def two_cluster_platform(procs: int = 4, heterogeneous: bool = False) -> PlatformSpec:
    """Minimal two-cluster platform used by the figure examples and tests."""
    speed2 = 1.4 if heterogeneous else 1.0
    return PlatformSpec(
        "figure-example",
        (
            ClusterSpec("cluster1", procs, 1.0),
            ClusterSpec("cluster2", procs, speed2),
        ),
    )
