"""Benchmark: regenerate Table 15 of the paper.

Table 15 reports the percentage of impacted jobs finishing earlier for Algorithm 2 (with cancellation),
on heterogeneous platforms: one row per (local batch policy, heuristic), one
column per workload scenario.
"""

from benchmarks.conftest import run_table_bench


def test_table15_early_heter_cancel(benchmark, sweeps):
    run_table_bench(
        benchmark,
        sweeps,
        metric="early",
        algorithm="cancellation",
        heterogeneous=True,
        expected_number=15,
    )
