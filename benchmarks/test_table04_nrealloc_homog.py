"""Benchmark: regenerate Table 4 of the paper.

Table 4 reports the number of reallocations for Algorithm 1 (without cancellation),
on homogeneous platforms: one row per (local batch policy, heuristic), one
column per workload scenario.
"""

from benchmarks.conftest import run_table_bench


def test_table04_nrealloc_homog(benchmark, sweeps):
    run_table_bench(
        benchmark,
        sweeps,
        metric="reallocations",
        algorithm="standard",
        heterogeneous=False,
        expected_number=4,
    )
