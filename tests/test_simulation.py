"""Tests for the end-to-end GridSimulation."""

from __future__ import annotations

import pytest

from repro.batch.job import JobState
from repro.core.metrics import compare_runs
from repro.grid.simulation import GridSimulation
from repro.platform.spec import ClusterSpec, PlatformSpec
from tests.conftest import make_job


@pytest.fixture
def platform():
    return PlatformSpec(
        "sim-test",
        (ClusterSpec("one", 4, 1.0), ClusterSpec("two", 4, 1.0)),
    )


def small_trace():
    """A deterministic trace that saturates the platform for a while."""
    jobs = []
    job_id = 0
    for wave in range(4):
        for _ in range(3):
            jobs.append(
                make_job(
                    job_id,
                    submit_time=600.0 * wave,
                    procs=2,
                    runtime=1200.0,
                    walltime=3600.0,
                )
            )
            job_id += 1
    return jobs


class TestBaselineRun:
    def test_all_jobs_complete(self, platform):
        result = GridSimulation(platform, small_trace(), batch_policy="fcfs").run()
        assert len(result) == 12
        assert result.completed_count == 12
        assert result.total_reallocations == 0
        assert result.makespan > 0

    def test_response_times_positive(self, platform):
        result = GridSimulation(platform, small_trace(), batch_policy="cbf").run()
        assert all(rt >= 0 for rt in result.response_times().values())

    def test_metadata_describes_configuration(self, platform):
        result = GridSimulation(platform, small_trace(), batch_policy="cbf").run()
        assert result.metadata["batch_policy"] == "CBF"
        assert result.metadata["reallocation"] == "none"
        assert result.metadata["n_jobs"] == 12

    def test_oversized_jobs_are_rejected(self, platform):
        jobs = small_trace() + [make_job(99, submit_time=0.0, procs=64, runtime=10.0)]
        result = GridSimulation(platform, jobs, batch_policy="fcfs").run()
        assert result.rejected_count == 1
        assert result[99].state is JobState.REJECTED

    def test_run_is_single_use(self, platform):
        simulation = GridSimulation(platform, small_trace())
        simulation.run()
        with pytest.raises(RuntimeError):
            simulation.run()

    def test_determinism(self, platform):
        first = GridSimulation(platform, [j.copy() for j in small_trace()]).run()
        second = GridSimulation(platform, [j.copy() for j in small_trace()]).run()
        assert first.completion_times() == second.completion_times()

    def test_event_trace_recording(self, platform):
        simulation = GridSimulation(platform, small_trace(), record_events=True)
        simulation.run()
        assert simulation.event_trace is not None
        assert len(simulation.event_trace) > 0


class TestReallocationRun:
    def test_reallocation_agent_attached_and_ticking(self, platform):
        simulation = GridSimulation(
            platform,
            small_trace(),
            batch_policy="fcfs",
            reallocation="standard",
            heuristic="minmin",
        )
        result = simulation.run()
        assert simulation.reallocation_agent is not None
        assert result.reallocation_events >= 1
        assert result.completed_count == 12

    def test_reallocation_metadata(self, platform):
        result = GridSimulation(
            platform,
            small_trace(),
            batch_policy="cbf",
            reallocation="cancellation",
            heuristic="maxgain",
        ).run()
        assert result.metadata["reallocation"] == "cancellation"
        assert result.metadata["heuristic"] == "maxgain"
        assert "cancellation" in result.label

    def test_invalid_policy_names_raise(self, platform):
        with pytest.raises(ValueError):
            GridSimulation(platform, [], batch_policy="sjf")
        with pytest.raises(ValueError):
            GridSimulation(platform, [], reallocation="swap")

    def test_all_jobs_still_complete_with_reallocation(self, platform):
        for algorithm in ("standard", "cancellation"):
            for heuristic in ("mct", "minmin", "sufferage"):
                result = GridSimulation(
                    platform,
                    [j.copy() for j in small_trace()],
                    batch_policy="fcfs",
                    reallocation=algorithm,
                    heuristic=heuristic,
                ).run()
                assert result.completed_count == 12, (algorithm, heuristic)

    def test_comparison_against_baseline_is_well_formed(self, platform):
        trace = small_trace()
        baseline = GridSimulation(platform, [j.copy() for j in trace]).run()
        realloc = GridSimulation(
            platform,
            [j.copy() for j in trace],
            reallocation="cancellation",
            heuristic="minmin",
        ).run()
        metrics = compare_runs(baseline, realloc)
        assert metrics.compared_jobs == 12
        assert 0.0 <= metrics.pct_impacted <= 100.0
        assert 0.0 <= metrics.pct_earlier <= 100.0
        assert metrics.relative_response_time > 0.0

    def test_heterogeneous_platform_runs(self):
        platform = PlatformSpec(
            "heter", (ClusterSpec("slow", 4, 1.0), ClusterSpec("fast", 4, 2.0))
        )
        result = GridSimulation(
            platform,
            small_trace(),
            batch_policy="cbf",
            reallocation="standard",
            heuristic="mct",
        ).run()
        assert result.completed_count == 12
        # the fast cluster should attract at least one job
        assert any(record.final_cluster == "fast" for record in result)
