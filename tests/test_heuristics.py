"""Tests for the six rescheduling heuristics and JobEstimate."""

from __future__ import annotations

import math

import pytest

from repro.core.heuristics import (
    HEURISTIC_LABELS,
    HEURISTIC_NAMES,
    Heuristic,
    JobEstimate,
    MaxGain,
    MaxMin,
    MaxRelGain,
    MctOrder,
    MinMin,
    Sufferage,
    get_heuristic,
)
from tests.conftest import make_job


def estimate(job_id, submit=0.0, procs=1, current="a", current_ect=100.0, ects=None):
    job = make_job(job_id, submit_time=submit, procs=procs)
    return JobEstimate(
        job=job,
        current_cluster=current,
        current_ect=current_ect,
        ects=ects if ects is not None else {"a": current_ect, "b": current_ect},
    )


class TestJobEstimate:
    def test_best_cluster_and_ect(self):
        est = estimate(1, ects={"a": 100.0, "b": 80.0, "c": 90.0})
        assert est.best_cluster == "b"
        assert est.best_ect == 80.0

    def test_best_cluster_tie_breaks_by_name(self):
        est = estimate(1, ects={"b": 50.0, "a": 50.0})
        assert est.best_cluster == "a"

    def test_second_best_ect(self):
        est = estimate(1, ects={"a": 100.0, "b": 80.0, "c": 90.0})
        assert est.second_best_ect == 90.0

    def test_second_best_with_single_cluster(self):
        est = estimate(1, ects={"a": 100.0})
        assert est.second_best_ect == 100.0

    def test_best_other_cluster_excludes_current(self):
        est = estimate(1, current="a", ects={"a": 10.0, "b": 80.0, "c": 90.0})
        assert est.best_other_cluster == "b"
        assert est.best_other_ect == 80.0

    def test_best_other_with_no_alternative(self):
        est = estimate(1, current="a", ects={"a": 10.0})
        assert est.best_other_cluster is None
        assert est.best_other_ect == math.inf

    def test_gain(self):
        est = estimate(1, current_ect=200.0, ects={"a": 200.0, "b": 150.0})
        assert est.gain == 50.0

    def test_negative_gain_when_current_is_best(self):
        est = estimate(1, current="a", current_ect=100.0, ects={"a": 100.0, "b": 150.0})
        assert est.gain == 0.0
        assert est.best_cluster == "a"

    def test_relative_gain_divides_by_procs(self):
        est = estimate(1, procs=4, current_ect=200.0, ects={"a": 200.0, "b": 100.0})
        assert est.relative_gain == pytest.approx(25.0)

    def test_sufferage(self):
        est = estimate(1, ects={"a": 300.0, "b": 100.0, "c": 180.0})
        assert est.sufferage == pytest.approx(80.0)

    def test_empty_ects(self):
        est = estimate(1, ects={})
        assert est.best_cluster is None
        assert est.best_ect == math.inf
        assert est.sufferage == 0.0


class TestHeuristicSelection:
    def test_mct_selects_by_submission_order(self):
        candidates = [
            estimate(1, submit=30.0),
            estimate(2, submit=10.0),
            estimate(3, submit=20.0),
        ]
        assert MctOrder().select(candidates).job.job_id == 2

    def test_mct_is_online(self):
        assert MctOrder().online is True
        assert MinMin().online is False

    def test_minmin_selects_smallest_best_ect(self):
        candidates = [
            estimate(1, ects={"a": 300.0, "b": 200.0}),
            estimate(2, ects={"a": 100.0, "b": 400.0}),
            estimate(3, ects={"a": 250.0, "b": 250.0}),
        ]
        assert MinMin().select(candidates).job.job_id == 2

    def test_maxmin_selects_largest_best_ect(self):
        candidates = [
            estimate(1, ects={"a": 300.0, "b": 200.0}),
            estimate(2, ects={"a": 100.0, "b": 400.0}),
            estimate(3, ects={"a": 250.0, "b": 260.0}),
        ]
        assert MaxMin().select(candidates).job.job_id == 3

    def test_maxgain_selects_largest_gain(self):
        candidates = [
            estimate(1, current_ect=500.0, ects={"a": 500.0, "b": 400.0}),  # gain 100
            estimate(2, current_ect=300.0, ects={"a": 300.0, "b": 50.0}),   # gain 250
            estimate(3, current_ect=900.0, ects={"a": 900.0, "b": 880.0}),  # gain 20
        ]
        assert MaxGain().select(candidates).job.job_id == 2

    def test_maxrelgain_prefers_small_jobs(self):
        candidates = [
            # absolute gain 400 but 16 processors -> 25 per proc
            estimate(1, procs=16, current_ect=900.0, ects={"a": 900.0, "b": 500.0}),
            # absolute gain 100 on a single processor -> 100 per proc
            estimate(2, procs=1, current_ect=300.0, ects={"a": 300.0, "b": 200.0}),
        ]
        assert MaxRelGain().select(candidates).job.job_id == 2
        # MaxGain would pick the other one
        assert MaxGain().select(candidates).job.job_id == 1

    def test_sufferage_selects_most_penalised(self):
        candidates = [
            estimate(1, ects={"a": 100.0, "b": 110.0}),   # sufferage 10
            estimate(2, ects={"a": 100.0, "b": 500.0}),   # sufferage 400
            estimate(3, ects={"a": 100.0, "b": 150.0}),   # sufferage 50
        ]
        assert Sufferage().select(candidates).job.job_id == 2

    def test_tie_break_by_submit_time_then_id(self):
        candidates = [
            estimate(5, submit=10.0, ects={"a": 100.0}),
            estimate(2, submit=10.0, ects={"a": 100.0}),
            estimate(7, submit=5.0, ects={"a": 100.0}),
        ]
        assert MinMin().select(candidates).job.job_id == 7
        no_seven = [c for c in candidates if c.job.job_id != 7]
        assert MinMin().select(no_seven).job.job_id == 2

    def test_empty_candidates_raise(self):
        for name in HEURISTIC_NAMES:
            with pytest.raises(ValueError):
                get_heuristic(name).select([])

    def test_order_returns_full_ranking(self):
        candidates = [
            estimate(1, ects={"a": 300.0}),
            estimate(2, ects={"a": 100.0}),
            estimate(3, ects={"a": 200.0}),
        ]
        ranked = MinMin().order(candidates)
        assert [c.job.job_id for c in ranked] == [2, 3, 1]

    def test_select_is_first_of_order(self):
        candidates = [
            estimate(1, ects={"a": 300.0, "b": 120.0}),
            estimate(2, ects={"a": 100.0, "b": 400.0}),
            estimate(3, ects={"a": 250.0, "b": 250.0}),
        ]
        for name in HEURISTIC_NAMES:
            heuristic = get_heuristic(name)
            assert heuristic.select(candidates) is heuristic.order(candidates)[0]


class TestRegistry:
    def test_all_names_resolve(self):
        for name in HEURISTIC_NAMES:
            heuristic = get_heuristic(name)
            assert isinstance(heuristic, Heuristic)
            assert heuristic.name == name

    def test_case_insensitive_and_cancellation_suffix(self):
        assert get_heuristic("MinMin").name == "minmin"
        assert get_heuristic("MaxGain-C").name == "maxgain"

    def test_instance_passthrough(self):
        heuristic = MinMin()
        assert get_heuristic(heuristic) is heuristic

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_heuristic("firstfit")

    def test_labels_cover_all_heuristics(self):
        assert set(HEURISTIC_LABELS) == set(HEURISTIC_NAMES)
        assert HEURISTIC_LABELS["maxrelgain"] == "MaxRelGain"
