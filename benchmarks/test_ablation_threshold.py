"""Ablation: sensitivity to the minimum-improvement threshold of Algorithm 1.

Algorithm 1 only moves a job if another cluster improves its expected
completion time by at least one minute.  This ablation compares a zero
threshold (move on any improvement), the paper's 60 seconds, and a much
more conservative 10 minutes.
"""

from dataclasses import replace

from benchmarks.conftest import TARGET_JOBS
from repro.experiments.config import ExperimentConfig, bench_scale

THRESHOLDS = (0.0, 60.0, 600.0)


def test_ablation_improvement_threshold(benchmark, runner):
    base = ExperimentConfig(
        scenario="jun",
        batch_policy="fcfs",
        algorithm="standard",
        heuristic="mct",
        scale=bench_scale("jun", TARGET_JOBS),
    )

    def sweep_thresholds():
        return {
            threshold: runner.metrics(replace(base, reallocation_threshold=threshold))
            for threshold in THRESHOLDS
        }

    results = benchmark.pedantic(sweep_thresholds, rounds=1, iterations=1)

    print()
    print("Ablation: minimum ECT improvement to move a job (scenario jun, FCFS, MCT)")
    print(f"{'threshold':>10s} {'impacted%':>10s} {'moves':>7s} {'early%':>8s} {'rel.resp':>9s}")
    for threshold, metrics in results.items():
        print(
            f"{threshold:10.0f} {metrics.pct_impacted:10.1f} {metrics.reallocations:7d} "
            f"{metrics.pct_earlier:8.1f} {metrics.relative_response_time:9.2f}"
        )

    # Raising the threshold can only filter moves out at a given event, so a
    # much stricter threshold should not move substantially more jobs.
    assert results[600.0].reallocations <= results[0.0].reallocations + 5
    for metrics in results.values():
        assert metrics.relative_response_time > 0.0
