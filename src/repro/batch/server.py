"""Per-cluster batch server (the frontal node).

The :class:`BatchServer` is the component deployed on the frontal of a
parallel resource in the paper's architecture.  It owns one
:class:`~repro.batch.cluster.ClusterState`, a waiting queue, and a local
scheduling policy (FCFS or CBF), and it exposes to the middleware exactly
the simple queries the paper allows itself:

* :meth:`BatchServer.submit` — add a job to the waiting queue;
* :meth:`BatchServer.cancel` — remove a *waiting* job from the queue;
* :meth:`BatchServer.estimate_completion` — expected completion time of a
  job if it were submitted now (or of a job already waiting here);
* :meth:`BatchServer.waiting_jobs` — snapshot of the waiting queue.

Scheduling state is event-driven: instead of replanning the whole waiting
queue whenever anything changes, the server drives an
:class:`~repro.batch.policies.IncrementalPlanner` that edits only the
dirty suffix of the plan — a submission places one job at the tail, a
cancellation replans from the cancelled position, a job starting at its
planned slot and a completion at the walltime boundary cost nothing, and
only an early completion (processors returned at an unpredicted time)
replans the full queue.  Estimation queries are served straight from the
live residual profile, so the grid layer's ECT storms never trigger a
replan.  Because processors are only released by completion events,
handling these events is enough: between two events no new start can
become feasible.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.batch.cluster import ClusterState, RunningJob
from repro.batch.job import Job, JobState
from repro.batch.policies import BatchPolicy, IncrementalPlanner
from repro.batch.schedule import ClusterPlan
from repro.sim.events import EventType
from repro.sim.kernel import SimulationKernel


class BatchServerError(RuntimeError):
    """Raised on invalid middleware requests (e.g. cancelling a running job)."""


class BatchServer:
    """Frontal of one cluster: waiting queue + local scheduling policy.

    Parameters
    ----------
    kernel:
        Simulation kernel used to schedule start and completion events.
    name:
        Cluster name.
    total_procs:
        Number of processors of the cluster.
    speed:
        Relative speed factor (1.0 = reference cluster).
    policy:
        Local scheduling policy (:class:`BatchPolicy` member or its name).
    on_completion:
        Optional callback invoked as ``on_completion(job)`` whenever a job
        finishes on this cluster (used by the grid simulation to collect
        results).
    on_start:
        Optional callback invoked as ``on_start(job)`` whenever a job starts
        executing on this cluster (used by the multi-submission agent to
        cancel the other copies of a job).
    """

    def __init__(
        self,
        kernel: SimulationKernel,
        name: str,
        total_procs: int,
        speed: float = 1.0,
        policy: "BatchPolicy | str" = BatchPolicy.FCFS,
        on_completion: Optional[Callable[[Job], None]] = None,
        on_start: Optional[Callable[[Job], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.cluster = ClusterState(name, total_procs, speed)
        if isinstance(policy, str):
            policy = BatchPolicy(policy.lower())
        self.policy = policy
        self._planner = IncrementalPlanner(policy, self.cluster)
        self.on_completion = on_completion
        self.on_start = on_start
        # Statistics.
        self.submitted_count = 0
        self.cancelled_count = 0
        self.started_count = 0
        self.completed_count = 0
        self.killed_count = 0

    # ------------------------------------------------------------------ #
    # Properties                                                         #
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Cluster name."""
        return self.cluster.name

    @property
    def speed(self) -> float:
        """Relative speed factor of the cluster."""
        return self.cluster.speed

    @property
    def total_procs(self) -> int:
        """Number of processors of the cluster."""
        return self.cluster.total_procs

    @property
    def queue_length(self) -> int:
        """Number of waiting jobs."""
        return len(self._planner.jobs)

    def waiting_jobs(self) -> List[Job]:
        """Snapshot of the waiting queue, in queue order."""
        return list(self._planner.jobs)

    def work_left(self) -> float:
        """Remaining declared work, in core-seconds.

        This is what a "least work left" meta-scheduling policy queries: the
        walltime-based remaining occupation of the running jobs plus the
        full walltime-based demand of the waiting queue.
        """
        now = self.kernel.now
        running = sum(
            entry.procs * max(0.0, entry.walltime_end - now)
            for entry in self.cluster.running_jobs()
        )
        waiting = sum(job.procs * job.walltime_on(self.speed) for job in self._planner.jobs)
        return running + waiting

    def has_waiting(self, job: Job) -> bool:
        """True if the job is currently waiting in this server's queue."""
        return self._planner.index_of(job.job_id) >= 0

    def fits(self, job: Job) -> bool:
        """True if the job's processor request fits on this cluster."""
        return self.cluster.fits(job)

    # ------------------------------------------------------------------ #
    # Middleware-facing operations                                       #
    # ------------------------------------------------------------------ #
    def submit(self, job: Job) -> None:
        """Append a job to the waiting queue and try to start jobs."""
        if not self.cluster.fits(job):
            raise BatchServerError(
                f"job {job.job_id} needs {job.procs} procs but cluster "
                f"{self.name} only has {self.total_procs}"
            )
        if self.has_waiting(job) or self.cluster.is_running(job.job_id):
            raise BatchServerError(f"job {job.job_id} is already known to cluster {self.name}")
        job.state = JobState.WAITING
        job.cluster = self.name
        job.local_submit_time = self.kernel.now
        self._planner.submit(job, self.kernel.now)
        self.submitted_count += 1
        self._schedule_pass()

    def cancel(self, job: Job) -> None:
        """Remove a *waiting* job from the queue.

        Running jobs cannot be cancelled (the paper's reallocation only ever
        moves jobs in the waiting state).
        """
        index = self._planner.index_of(job.job_id)
        if index < 0:
            raise BatchServerError(f"job {job.job_id} is not waiting on cluster {self.name}")
        self._planner.cancel(index, self.kernel.now)
        job.state = JobState.CANCELLED
        job.cluster = None
        self.cancelled_count += 1
        self._schedule_pass()

    def estimate_completion(self, job: Job) -> float:
        """Expected completion time (ECT) of ``job`` on this cluster.

        * If the job is already waiting here, this is its currently planned
          completion time.
        * Otherwise it is the completion the job would obtain if it were
          submitted right now (placed at the end of the waiting queue, with
          back-filling when the policy is CBF), computed as a pure query
          against the live residual profile.
        * ``math.inf`` when the job cannot fit on this cluster.
        """
        return self.estimate_completion_many((job,))[0]

    def estimate_completion_many(self, jobs: Sequence[Job]) -> List[float]:
        """ECT of every job in ``jobs``, one column refresh in a single pass.

        Semantically identical to calling :meth:`estimate_completion` per
        job, but the per-query constant work — advancing the planner,
        materialising the plan lookup and resolving the FCFS frontier — is
        paid once for the whole batch.  This is the query the grid layer's
        estimate table issues when a reallocation touches this cluster and
        the ECT column of every remaining candidate must be refreshed: the
        estimates are pure what-if placements against the live residual
        profile, so the batch never mutates scheduling state.
        """
        if not jobs:
            return []
        now = self.kernel.now
        self._planner.advance(now)
        plan = self._planner.cluster_plan()
        frontier = self._planner.frontier() if self.policy is BatchPolicy.FCFS else now
        residual = self._planner.residual
        speed = self.speed
        cluster = self.cluster
        estimates: List[float] = []
        for job in jobs:
            if not cluster.fits(job):
                estimates.append(math.inf)
                continue
            if job.job_id in plan:
                estimates.append(plan.planned_end(job.job_id))
                continue
            duration = job.walltime_on(speed)
            start = residual.earliest_slot(job.procs, duration, frontier)
            if not math.isfinite(start):
                estimates.append(math.inf)
            else:
                estimates.append(start + duration)
        return estimates

    def planned_completion(self, job: Job) -> float:
        """Planned completion time of a job already waiting on this cluster."""
        self._planner.advance(self.kernel.now)
        plan = self._planner.cluster_plan()
        if job.job_id not in plan:
            raise BatchServerError(f"job {job.job_id} is not waiting on cluster {self.name}")
        return plan.planned_end(job.job_id)

    def planned_schedule(self) -> ClusterPlan:
        """Current plan of the waiting queue (one entry per waiting job)."""
        self._planner.advance(self.kernel.now)
        return self._planner.cluster_plan()

    def running_snapshot(self) -> List[RunningJob]:
        """Snapshot of the running jobs (start time and walltime-based end)."""
        return list(self.cluster.running_jobs())

    # ------------------------------------------------------------------ #
    # Internal scheduling                                                #
    # ------------------------------------------------------------------ #
    def _schedule_pass(self) -> None:
        """Start every waiting job whose planned slot is now."""
        if not self._planner.jobs:
            return
        now = self.kernel.now
        self._planner.advance(now)
        startable = {
            entry.job_id for entry in self._planner.plan.entries if entry.planned_start == now
        }
        if not startable:
            return
        to_start = [job for job in self._planner.jobs if job.job_id in startable]
        for job in to_start:
            if job.state is not JobState.WAITING or not self.has_waiting(job):
                # Starting the previous job can trigger arbitrary observer
                # callbacks (e.g. the multi-submission agent cancelling
                # sibling copies), which may have removed or even started
                # this candidate through a nested scheduling pass.
                continue
            if job.procs > self.cluster.free_procs:
                # The plan treats jobs at their walltime boundary as already
                # finished, but their completion events (same timestamp,
                # higher priority) have not all fired yet, so the processors
                # are not released.  Stop here; the pass triggered by the
                # remaining completion events will start this job.
                break
            self._start_job(job)

    def _start_job(self, job: Job) -> None:
        """Transition a waiting job to running and schedule its completion."""
        now = self.kernel.now
        self.cluster.start_job(job, now)
        self._planner.job_started(job, now)
        job.state = JobState.RUNNING
        job.start_time = now
        job.killed = job.exceeds_walltime()
        duration = job.effective_runtime_on(self.speed)
        self.started_count += 1
        self.kernel.schedule_at(
            now + duration,
            self._complete_job,
            job,
            event_type=EventType.JOB_COMPLETION,
        )
        if self.on_start is not None:
            self.on_start(job)

    def _complete_job(self, job: Job) -> None:
        """Completion (or walltime kill) of a running job."""
        now = self.kernel.now
        entry = self.cluster.finish_job(job.job_id, now)
        self._planner.job_finished(now, entry.walltime_end)
        job.state = JobState.COMPLETED
        job.completion_time = now
        self.completed_count += 1
        if job.killed:
            self.killed_count += 1
        self._schedule_pass()
        if self.on_completion is not None:
            self.on_completion(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchServer({self.name}, {self.policy}, "
            f"running={self.cluster.running_count}, waiting={len(self._planner.jobs)})"
        )
