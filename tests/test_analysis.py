"""Tests for the analysis package (stats and timelines)."""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    DistributionStats,
    bounded_slowdown,
    per_cluster_breakdown,
    response_time_stats,
    slowdown_stats,
    summarize_run,
    wait_time_stats,
)
from repro.analysis.timeline import (
    TimeSeries,
    per_cluster_utilization,
    utilization_timeline,
    waiting_jobs_timeline,
)
from repro.batch.job import JobState
from repro.core.results import JobRecord, RunResult
from repro.grid.simulation import GridSimulation
from repro.platform.spec import ClusterSpec, PlatformSpec
from tests.conftest import make_job


def record(job_id, submit=0.0, start=10.0, completion=110.0, procs=2, cluster="alpha",
           runtime=100.0, walltime=200.0):
    return JobRecord(
        job_id=job_id,
        submit_time=submit,
        procs=procs,
        runtime=runtime,
        walltime=walltime,
        origin_site=None,
        final_cluster=cluster,
        start_time=start,
        completion_time=completion,
        state=JobState.COMPLETED,
        killed=False,
        reallocation_count=0,
    )


def result_from(records):
    run = RunResult(label="test")
    for rec in records:
        run.records[rec.job_id] = rec
    run.makespan = max((r.completion_time for r in records if r.completion_time), default=0.0)
    return run


class TestDistributionStats:
    def test_from_values(self):
        stats = DistributionStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.maximum == 4.0
        assert stats.p95 == pytest.approx(3.85)

    def test_empty(self):
        stats = DistributionStats.from_values([])
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.maximum == 0.0


class TestJobStats:
    def test_bounded_slowdown(self):
        rec = record(1, submit=0.0, start=100.0, completion=200.0, runtime=100.0)
        # response 200, runtime 100 -> slowdown 2
        assert bounded_slowdown(rec) == pytest.approx(2.0)

    def test_bounded_slowdown_short_job_clamped(self):
        rec = record(1, submit=0.0, start=50.0, completion=51.0, runtime=1.0, walltime=60.0)
        # effective runtime clamped at tau=10 -> 51 / 10
        assert bounded_slowdown(rec) == pytest.approx(5.1)

    def test_bounded_slowdown_never_below_one(self):
        rec = record(1, submit=0.0, start=0.0, completion=5.0, runtime=5.0, walltime=10.0)
        assert bounded_slowdown(rec) == 1.0

    def test_bounded_slowdown_unfinished_is_none(self):
        rec = JobRecord(
            job_id=1, submit_time=0.0, procs=1, runtime=10.0, walltime=20.0,
            origin_site=None, final_cluster=None, start_time=None, completion_time=None,
            state=JobState.PENDING, killed=False, reallocation_count=0,
        )
        assert bounded_slowdown(rec) is None

    def test_response_and_wait_stats(self):
        run = result_from([
            record(1, submit=0.0, start=10.0, completion=110.0),
            record(2, submit=0.0, start=0.0, completion=50.0),
        ])
        responses = response_time_stats(run)
        waits = wait_time_stats(run)
        assert responses.count == 2
        assert responses.mean == pytest.approx(80.0)
        assert waits.mean == pytest.approx(5.0)

    def test_slowdown_stats(self):
        run = result_from([record(1, submit=0.0, start=100.0, completion=200.0, runtime=100.0)])
        assert slowdown_stats(run).mean == pytest.approx(2.0)


class TestBreakdownAndSummary:
    def test_per_cluster_breakdown(self):
        run = result_from([
            record(1, cluster="alpha", procs=2, start=0.0, completion=100.0),
            record(2, cluster="alpha", procs=1, start=0.0, completion=50.0),
            record(3, cluster="beta", procs=4, start=10.0, completion=110.0),
        ])
        breakdown = per_cluster_breakdown(run)
        assert set(breakdown) == {"alpha", "beta"}
        assert breakdown["alpha"].jobs == 2
        assert breakdown["alpha"].core_seconds == pytest.approx(2 * 100 + 1 * 50)
        assert breakdown["beta"].core_seconds == pytest.approx(400.0)

    def test_summarize_run_on_simulation_output(self, small_platform):
        jobs = [make_job(i, submit_time=10.0 * i, procs=2, runtime=50.0) for i in range(6)]
        run = GridSimulation(small_platform, jobs, batch_policy="fcfs").run()
        summary = summarize_run(run)
        assert summary.jobs == 6
        assert summary.completed == 6
        assert summary.response_time.count == 6
        assert summary.makespan == run.makespan
        assert sum(b.jobs for b in summary.clusters.values()) == 6


class TestTimeSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(times=(0.0, 1.0), values=(1.0,))
        with pytest.raises(ValueError):
            TimeSeries(times=(1.0, 0.0), values=(1.0, 2.0))

    def test_value_at_and_peak(self):
        series = TimeSeries(times=(0.0, 10.0, 20.0), values=(2.0, 5.0, 1.0))
        assert series.value_at(-1.0) == 0.0
        assert series.value_at(0.0) == 2.0
        assert series.value_at(15.0) == 5.0
        assert series.value_at(100.0) == 1.0
        assert series.peak == 5.0

    def test_mean_over(self):
        series = TimeSeries(times=(0.0, 10.0), values=(2.0, 4.0))
        # [0, 10): 2, [10, 20): 4 -> mean over [0, 20) is 3
        assert series.mean_over(0.0, 20.0) == pytest.approx(3.0)


class TestTimelines:
    def test_utilization_timeline_from_records(self):
        run = result_from([
            record(1, start=0.0, completion=100.0, procs=2),
            record(2, start=50.0, completion=150.0, procs=3),
        ])
        series = utilization_timeline(run)
        assert series.value_at(25.0) == 2.0
        assert series.value_at(75.0) == 5.0
        assert series.value_at(125.0) == 3.0
        assert series.value_at(200.0) == 0.0
        assert series.peak == 5.0

    def test_utilization_normalised_by_platform(self):
        platform = PlatformSpec("p", (ClusterSpec("alpha", 10),))
        run = result_from([record(1, start=0.0, completion=100.0, procs=5, cluster="alpha")])
        series = utilization_timeline(run, platform)
        assert series.value_at(50.0) == pytest.approx(0.5)

    def test_utilization_unknown_cluster_raises(self):
        platform = PlatformSpec("p", (ClusterSpec("alpha", 10),))
        run = result_from([record(1)])
        with pytest.raises(ValueError):
            utilization_timeline(run, platform, cluster="beta")

    def test_waiting_jobs_timeline(self):
        run = result_from([
            record(1, submit=0.0, start=50.0, completion=100.0),
            record(2, submit=10.0, start=60.0, completion=100.0),
            record(3, submit=20.0, start=20.0, completion=30.0),  # started immediately
        ])
        series = waiting_jobs_timeline(run)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(15.0) == 2.0
        assert series.value_at(55.0) == 1.0
        assert series.value_at(70.0) == 0.0

    def test_per_cluster_utilization(self, small_platform):
        jobs = [make_job(i, submit_time=0.0, procs=2, runtime=100.0) for i in range(4)]
        run = GridSimulation(small_platform, jobs, batch_policy="fcfs").run()
        series_by_cluster = per_cluster_utilization(run, small_platform)
        assert set(series_by_cluster) == {"alpha", "beta"}
        total_peak = sum(series.peak for series in series_by_cluster.values())
        assert total_peak > 0.0

    def test_conservation_between_stats_and_timeline(self, small_platform):
        jobs = [make_job(i, submit_time=5.0 * i, procs=1, runtime=30.0) for i in range(8)]
        run = GridSimulation(small_platform, jobs, batch_policy="cbf").run()
        series = utilization_timeline(run)
        core_seconds = sum(
            b.core_seconds for b in per_cluster_breakdown(run).values()
        )
        assert series.mean_over(0.0, run.makespan) * run.makespan == pytest.approx(core_seconds)


class TestBenchReportSerialization:
    def test_canonical_form_is_sorted_and_rounded(self):
        from repro.analysis.benchio import dumps_bench_report

        report = {"zeta": 0.123456789, "alpha": {"b": 2, "a": True}, "list": [1.00004, "x"]}
        text = dumps_bench_report(report)
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert text.index('"alpha"') < text.index('"list"') < text.index('"zeta"')
        assert "0.1235" in text and "1.0" in text
        assert "0.123456789" not in text
        # Serialization is idempotent and bools survive the float rounding.
        assert dumps_bench_report(report) == text
        assert '"a": true' in text

    def test_rerun_with_identical_content_does_not_touch_the_file(self, tmp_path):
        import os

        from repro.analysis.benchio import dump_bench_report

        path = tmp_path / "BENCH_x.json"
        dump_bench_report(path, {"speedup": 4.52001})
        first = path.read_text()
        stamp = os.stat(path).st_mtime_ns
        os.utime(path, ns=(stamp - 10_000_000_000, stamp - 10_000_000_000))
        stamp = os.stat(path).st_mtime_ns
        dump_bench_report(path, {"speedup": 4.520011})  # rounds identically
        assert path.read_text() == first
        assert os.stat(path).st_mtime_ns == stamp

    def test_non_json_values_are_rejected(self):
        from repro.analysis.benchio import dumps_bench_report

        with pytest.raises(TypeError):
            dumps_bench_report({"bad": object()})
