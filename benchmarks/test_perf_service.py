"""Service-shell benchmark: sustained admission throughput under burst load.

The online metascheduler service (:mod:`repro.service`) must keep up with
the paper's grid front door: bursts of thousands of submissions landing
on the admission queue while every batch is mapped through the bulk MCT
path.  The benchmark fills the admission queue to a target depth in one
open-loop burst (rate effectively infinite) and measures the *sustained*
rate at which the service admits — maps onto clusters — the backlog, end
to end through :meth:`MetaScheduler.submit_many`, plus the submit-latency
percentiles the service's own per-ticket stamps record.

Published as ``BENCH_service.json`` at the repository root: sustained
jobs/s per local policy (FCFS and CBF) at each queue depth, p50/p99
admit latency, and the backpressure engagement point (the queue depth at
which offers start being refused, which must equal the configured
high-water mark).  The FCFS floor asserts ≥10⁴ sustained jobs/s at depth
10⁴ — the throughput target of the service PR — and is enforced from the
committed numbers by ``repro bench check`` (``min_jobs_per_s``).  A
fourth scenario drains the same FCFS burst with the live reallocation
heartbeat enabled (one incremental-engine tick every ``REALLOC_INTERVAL``
virtual seconds) and holds the admission rate to the same floor.

Environment
-----------
``REPRO_BENCH_SERVICE_DEPTHS``
    Comma-separated queue depths replacing the default ``10000`` (CI
    smoke uses a small value; the throughput floors are only asserted at
    depths ≥ 10⁴).
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from perfutil import env_scales

from repro.analysis.benchio import dump_bench_report
from repro.platform.catalog import grid5000_platform
from repro.service import (
    MetaSchedulerService,
    ServiceClient,
    ServiceConfig,
    SubmitRejected,
    bombard,
    synthetic_specs,
)

#: Queue depths measured by default.
DEFAULT_DEPTHS = (10_000,)
#: Sustained admission floor (jobs/s), asserted per policy ...
MIN_JOBS_PER_S = {"fcfs": 10_000.0, "cbf": 5_000.0}
#: ... only at depths at least this large.
FLOOR_SCALE = 10_000
#: Timed repetitions per policy and depth (best-of, against noisy runners).
REPETITIONS = 2
#: Admission batch used by the measured configuration.
ADMISSION_BATCH = 1_024
#: Heartbeat of the measured configuration (virtual-clock seconds).
HEARTBEAT = 0.05
#: High-water mark of the backpressure scenario.
BACKPRESSURE_HIGH_WATER = 1_000
#: Virtual seconds between reallocation ticks in the live-reallocation
#: run — one full mid-burst tick lands inside the depth-10^4 drain
#: window (~0.5 virtual seconds at the default heartbeat).
REALLOC_INTERVAL = 0.3

BENCH_SEED = 20100611


def depths() -> tuple:
    return env_scales("REPRO_BENCH_SERVICE_DEPTHS", DEFAULT_DEPTHS)


async def _drain_burst(policy: str, depth: int, reallocation: bool = False):
    """Fill the admission queue to ``depth`` in one burst, drain it, report."""
    config = ServiceConfig(
        heartbeat=HEARTBEAT,
        admission_batch=ADMISSION_BATCH,
        max_queue=depth + 1,
        high_water=depth + 1,  # backpressure is measured separately
        reallocation_interval=REALLOC_INTERVAL if reallocation else None,
    )
    service = MetaSchedulerService(
        grid5000_platform(), batch_policy=policy, config=config
    )
    async with service:
        client = ServiceClient(service)
        report = await bombard(
            client,
            jobs=depth,
            rate=1e12,  # open loop at an unreachable rate: one burst
            specs=synthetic_specs(seed=BENCH_SEED),
            drain_timeout=300.0,
        )
    assert report.drained, (
        f"{policy} at depth {depth}: admission queue still holds "
        f"{service.queue_depth} jobs after the drain timeout"
    )
    assert report.accepted == depth
    assert service.admitted == depth
    return report, service


def measure_policy(policy: str, depth: int, reallocation: bool = False):
    """Best-of-``REPETITIONS`` sustained rate for one policy and depth."""
    best = None
    for _ in range(REPETITIONS):
        report, service = asyncio.run(_drain_burst(policy, depth, reallocation))
        if best is None or report.sustained_rate > best[0].sustained_rate:
            best = (report, service)
    return best


def measure_backpressure():
    """Queue depth at which offers start being refused, and the recovery."""

    async def run():
        config = ServiceConfig(
            heartbeat=HEARTBEAT,
            admission_batch=ADMISSION_BATCH,
            max_queue=BACKPRESSURE_HIGH_WATER * 4,
            high_water=BACKPRESSURE_HIGH_WATER,
        )
        service = MetaSchedulerService(
            grid5000_platform(), batch_policy="fcfs", config=config
        )
        engaged_at = None
        rejected = 0
        async with service:
            specs = synthetic_specs(seed=BENCH_SEED)
            for _ in range(BACKPRESSURE_HIGH_WATER * 2):
                procs, runtime, walltime = next(specs)
                try:
                    service.offer(procs, runtime, walltime)
                except SubmitRejected as exc:
                    assert exc.reason == "backpressure"
                    if engaged_at is None:
                        engaged_at = service.queue_depth
                    rejected += 1
            client = ServiceClient(service)
            await client.drain()
            released = not service.backpressure_engaged
            # After the drain the door must be open again.
            service.offer(1, 60.0)
            await client.drain()
        return {
            "high_water": BACKPRESSURE_HIGH_WATER,
            "engaged_at_depth": engaged_at,
            "rejected_during_burst": rejected,
            "released_after_drain": released,
        }

    return asyncio.run(run())


def test_service_throughput():
    report = {
        "platform": "grid5000 (3 clusters)",
        "heartbeat_s": HEARTBEAT,
        "admission_batch": ADMISSION_BATCH,
        "speedup_floor_scale": FLOOR_SCALE,
        "policies": {},
    }
    measured = {}
    for policy in ("fcfs", "cbf"):
        entry = {"min_jobs_per_s": MIN_JOBS_PER_S[policy]}
        for depth in depths():
            run, service = measure_policy(policy, depth)
            latency = run.latency
            entry[str(depth)] = {
                "jobs_per_s": round(run.sustained_rate, 2),
                "drain_wall_s": round(run.drain_wall_s, 4),
                "p50_latency_ms": round(latency["p50"] * 1e3, 2),
                "p99_latency_ms": round(latency["p99"] * 1e3, 2),
                "admission_passes": service.admission_passes,
            }
            measured[(policy, depth)] = run.sustained_rate
        report["policies"][policy] = entry

    # Admission throughput with the live reallocation heartbeat enabled:
    # every REALLOC_INTERVAL virtual seconds the incremental engine
    # re-tunes the waiting queues in the middle of the drain.  The
    # heartbeat must not cost the admission path its 10^4 jobs/s floor.
    realloc_entry = {"min_jobs_per_s": MIN_JOBS_PER_S["fcfs"]}
    for depth in depths():
        run, service = measure_policy("fcfs", depth, reallocation=True)
        assert service.reallocation_ticks >= 1, (
            f"reallocation heartbeat never fired during the depth-{depth} drain"
        )
        realloc_stats = service.stats()["reallocation"]
        realloc_entry[str(depth)] = {
            "jobs_per_s": round(run.sustained_rate, 2),
            "drain_wall_s": round(run.drain_wall_s, 4),
            "ticks": realloc_stats["ticks"],
            "tuned_moves": realloc_stats["tuned"],
        }
        measured[("fcfs+realloc", depth)] = run.sustained_rate
    report["reallocation"] = {
        "interval_s": REALLOC_INTERVAL,
        "algorithm": "standard",
        "heuristic": "mct",
        **realloc_entry,
    }

    report["backpressure"] = backpressure = measure_backpressure()
    assert backpressure["engaged_at_depth"] == BACKPRESSURE_HIGH_WATER
    assert backpressure["rejected_during_burst"] == BACKPRESSURE_HIGH_WATER
    assert backpressure["released_after_drain"] is True

    out_path = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    dump_bench_report(out_path, report)
    print(
        "\nservice admission drain: "
        + ", ".join(
            f"{policy}@{depth} {rate:,.0f} jobs/s"
            for (policy, depth), rate in measured.items()
        )
        + f"; backpressure engaged at depth {backpressure['engaged_at_depth']}"
    )
    for (policy, depth), rate in measured.items():
        if depth >= FLOOR_SCALE:
            floor = MIN_JOBS_PER_S[policy.split("+")[0]]
            assert rate >= floor, (
                f"{policy} at depth {depth}: sustained {rate:,.0f} jobs/s "
                f"below the {floor:,.0f} jobs/s floor"
            )
