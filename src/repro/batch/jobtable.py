"""Columnar job storage: the structure-of-arrays companion of :class:`Job`.

A Python :class:`~repro.batch.job.Job` object costs hundreds of bytes and
one attribute walk per field read; at archive scale (10⁶–10⁷ records) the
objects alone dwarf the simulation state and every aggregation turns into
millions of attribute lookups.  :class:`JobTable` stores the same
information *columnar*, following the ``EstimateMatrix`` pattern from the
estimation engine:

* one NumPy column per static field — ``job_id``, ``submit_time``,
  ``procs``, ``runtime``, ``walltime`` — appended with capacity doubling;
* optional *outcome* columns (``start_time``, ``completion_time``,
  ``state``, ``killed``, ``reallocation_count``, ``outage_kills``) filled
  when the table snapshots finished runs, with ``NaN`` standing for the
  object world's ``None``;
* origin sites interned once into a small category list with per-row
  ``int32`` codes.

That is ~58 bytes per job instead of several hundred, and metric
aggregation (counts, means, response times) becomes a handful of NumPy
reductions instead of a per-object walk.  :meth:`from_jobs` consumes any
iterable — feed it the streaming :func:`~repro.workload.swf.iter_swf_file`
generator and a multi-year trace goes from gzip to columns without ever
existing as a list of objects — and :meth:`records` / :meth:`iter_jobs`
rebuild object views chunk by chunk when the object world is needed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.batch.job import Job, JobState

#: Initial row capacity of a table (doubled on demand).
_INITIAL_CAPACITY = 1024

#: ``state`` column codes, in :class:`JobState` declaration order.
_STATE_ORDER: Tuple[JobState, ...] = tuple(JobState)
_STATE_CODE: Dict[JobState, int] = {state: i for i, state in enumerate(_STATE_ORDER)}
_STATE_CODE_BY_VALUE: Dict[str, int] = {
    state.value: code for state, code in _STATE_CODE.items()
}

#: Serialized column names and dtypes of the static fields, in layout order.
STATIC_COLUMNS: Tuple[Tuple[str, np.dtype], ...] = (
    ("job_id", np.dtype(np.int64)),
    ("submit_time", np.dtype(np.float64)),
    ("procs", np.dtype(np.int64)),
    ("runtime", np.dtype(np.float64)),
    ("walltime", np.dtype(np.float64)),
    ("site_code", np.dtype(np.int32)),
)

#: Serialized column names and dtypes of the outcome fields, in layout order.
OUTCOME_COLUMNS: Tuple[Tuple[str, np.dtype], ...] = (
    ("start_time", np.dtype(np.float64)),
    ("completion_time", np.dtype(np.float64)),
    ("state", np.dtype(np.int8)),
    ("killed", np.dtype(bool)),
    ("reallocation_count", np.dtype(np.int32)),
    ("outage_kills", np.dtype(np.int32)),
    ("cluster_code", np.dtype(np.int32)),
)


class JobTable:
    """Append-only columnar store of job records.

    Rows are appended (``add_job`` / ``append`` / ``extend``) and never
    removed; indices are therefore stable for the lifetime of the table.
    Columns are exposed as read-only views trimmed to the live row count.
    """

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(1, int(capacity))
        self._n = 0
        self._job_id = np.empty(capacity, dtype=np.int64)
        self._submit = np.empty(capacity, dtype=np.float64)
        self._procs = np.empty(capacity, dtype=np.int64)
        self._runtime = np.empty(capacity, dtype=np.float64)
        self._walltime = np.empty(capacity, dtype=np.float64)
        self._site_code = np.empty(capacity, dtype=np.int32)
        self._sites: List[Optional[str]] = []
        self._site_index: Dict[Optional[str], int] = {}
        # Outcome columns are allocated lazily on the first outcome write.
        self._start: Optional[np.ndarray] = None
        self._completion: Optional[np.ndarray] = None
        self._state: Optional[np.ndarray] = None
        self._killed: Optional[np.ndarray] = None
        self._realloc: Optional[np.ndarray] = None
        self._outage: Optional[np.ndarray] = None
        self._cluster_code: Optional[np.ndarray] = None
        self._clusters: List[Optional[str]] = [None]
        self._cluster_index: Dict[Optional[str], int] = {None: 0}

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_jobs(cls, jobs: Iterable[Job], capacity: int = _INITIAL_CAPACITY) -> "JobTable":
        """Build a table by draining any job iterable (generators welcome).

        Jobs carrying dynamic state (a start or completion time, a
        non-pending state) get outcome columns automatically.
        """
        table = cls(capacity=capacity)
        for job in jobs:
            table.add_job(job)
        return table

    @classmethod
    def from_swf_file(
        cls,
        path,
        site: Optional[str] = None,
        walltime_factor: Optional[float] = None,
    ) -> "JobTable":
        """Stream an SWF log (plain or ``.gz``) straight into columns."""
        from repro.workload.swf import DEFAULT_WALLTIME_FACTOR, iter_swf_file

        if walltime_factor is None:
            walltime_factor = DEFAULT_WALLTIME_FACTOR
        return cls.from_jobs(iter_swf_file(path, site=site, walltime_factor=walltime_factor))

    @classmethod
    def from_records(cls, records: Iterable["object"]) -> "JobTable":
        """Build a table from :class:`~repro.core.results.JobRecord` rows.

        Outcome columns are always present on the result (record state is
        definitive even when a job never started).
        """
        table = cls()
        for record in records:
            index = table.append(
                record.job_id,
                record.submit_time,
                record.procs,
                record.runtime,
                record.walltime,
                site=record.origin_site,
            )
            table.set_outcome(
                index,
                start_time=record.start_time,
                completion_time=record.completion_time,
                state=record.state,
                killed=record.killed,
                reallocation_count=record.reallocation_count,
                outage_kills=record.outage_kills,
                final_cluster=record.final_cluster,
            )
        return table

    @classmethod
    def from_record_dicts(cls, rows: Sequence[Mapping[str, Any]]) -> "JobTable":
        """Build a table from serialized record dicts (see :meth:`record_dicts`).

        The columnar inverse of :meth:`record_dicts`: one generator pass
        per column straight into the backing arrays, so deserializing an
        archive-scale result document never builds a
        :class:`~repro.core.results.JobRecord` object.  An empty row list
        yields an empty table without outcome columns.
        """
        n = len(rows)
        table = cls(capacity=max(1, n))
        if n == 0:
            return table
        table._job_id[:n] = np.fromiter(
            (row["job_id"] for row in rows), dtype=np.int64, count=n
        )
        table._submit[:n] = np.fromiter(
            (row["submit_time"] for row in rows), dtype=np.float64, count=n
        )
        table._procs[:n] = np.fromiter(
            (row["procs"] for row in rows), dtype=np.int64, count=n
        )
        table._runtime[:n] = np.fromiter(
            (row["runtime"] for row in rows), dtype=np.float64, count=n
        )
        table._walltime[:n] = np.fromiter(
            (row["walltime"] for row in rows), dtype=np.float64, count=n
        )

        def intern(index: Dict[Optional[str], int], names: List[Optional[str]], name):
            code = index.get(name)
            if code is None:
                code = len(names)
                names.append(name)
                index[name] = code
            return code

        table._site_code[:n] = np.fromiter(
            (intern(table._site_index, table._sites, row["origin_site"]) for row in rows),
            dtype=np.int32,
            count=n,
        )
        table._alloc_outcomes()
        table._start[:n] = np.fromiter(
            (
                math.nan if row["start_time"] is None else row["start_time"]
                for row in rows
            ),
            dtype=np.float64,
            count=n,
        )
        table._completion[:n] = np.fromiter(
            (
                math.nan if row["completion_time"] is None else row["completion_time"]
                for row in rows
            ),
            dtype=np.float64,
            count=n,
        )
        table._state[:n] = np.fromiter(
            (_STATE_CODE_BY_VALUE[row["state"]] for row in rows), dtype=np.int8, count=n
        )
        table._killed[:n] = np.fromiter(
            (row["killed"] for row in rows), dtype=bool, count=n
        )
        table._realloc[:n] = np.fromiter(
            (row["reallocation_count"] for row in rows), dtype=np.int32, count=n
        )
        table._outage[:n] = np.fromiter(
            (row.get("outage_kills", 0) for row in rows), dtype=np.int32, count=n
        )
        table._cluster_code[:n] = np.fromiter(
            (
                intern(table._cluster_index, table._clusters, row["final_cluster"])
                for row in rows
            ),
            dtype=np.int32,
            count=n,
        )
        table._n = n
        return table

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        sites: Sequence[Optional[str]],
        clusters: Optional[Sequence[Optional[str]]] = None,
    ) -> "JobTable":
        """Adopt deserialized column arrays (inverse of :meth:`to_columns`).

        ``columns`` must hold every static column; the outcome columns are
        all-or-nothing.  Category codes are validated against the ``sites``
        / ``clusters`` lists so a corrupt document fails loudly (the store
        treats any :class:`ValueError` as a corrupt-document cache miss).
        """
        job_id = np.asarray(columns.get("job_id"))
        if job_id.dtype != np.int64 or job_id.ndim != 1:
            raise ValueError("job_id column must be a one-dimensional int64 array")
        n = job_id.shape[0]
        table = cls(capacity=max(1, n))
        present = set(columns)
        static_names = {name for name, _ in STATIC_COLUMNS}
        outcome_names = {name for name, _ in OUTCOME_COLUMNS}
        if not static_names <= present:
            raise ValueError(f"missing static columns: {sorted(static_names - present)}")
        has_outcomes = bool(outcome_names & present)
        if has_outcomes and not outcome_names <= present:
            raise ValueError(
                f"missing outcome columns: {sorted(outcome_names - present)}"
            )
        layout = STATIC_COLUMNS + (OUTCOME_COLUMNS if has_outcomes else ())
        if has_outcomes:
            table._alloc_outcomes()
        targets = {
            "job_id": table._job_id,
            "submit_time": table._submit,
            "procs": table._procs,
            "runtime": table._runtime,
            "walltime": table._walltime,
            "site_code": table._site_code,
            "start_time": table._start,
            "completion_time": table._completion,
            "state": table._state,
            "killed": table._killed,
            "reallocation_count": table._realloc,
            "outage_kills": table._outage,
            "cluster_code": table._cluster_code,
        }
        for name, dtype in layout:
            column = np.asarray(columns[name])
            if column.ndim != 1 or column.shape[0] != n:
                raise ValueError(f"column {name!r} must hold {n} rows")
            targets[name][:n] = column.astype(dtype, casting="same_kind", copy=False)
        table._n = n
        table._sites = list(sites)
        table._site_index = {site: i for i, site in enumerate(table._sites)}
        if n and not 0 <= int(table._site_code[:n].max()) < len(table._sites):
            raise ValueError("site codes exceed the site category list")
        if has_outcomes:
            table._clusters = list(clusters) if clusters is not None else [None]
            table._cluster_index = {
                cluster: i for i, cluster in enumerate(table._clusters)
            }
            if n and not 0 <= int(table._cluster_code[:n].max()) < len(table._clusters):
                raise ValueError("cluster codes exceed the cluster category list")
            if n and not 0 <= int(table._state[:n].max()) < len(_STATE_ORDER):
                raise ValueError("state codes exceed the JobState order")
        return table

    def to_columns(
        self,
    ) -> Tuple[Dict[str, np.ndarray], List[Optional[str]], List[Optional[str]]]:
        """``(columns, sites, clusters)`` of the live rows, for serialization.

        Columns are read-only views trimmed to the live row count in the
        declaration order of :data:`STATIC_COLUMNS` /
        :data:`OUTCOME_COLUMNS` (stable key order keeps serialized
        documents byte-deterministic); outcome columns appear only when
        the table carries outcomes.
        """
        columns: Dict[str, np.ndarray] = {
            "job_id": self.job_id,
            "submit_time": self.submit_time,
            "procs": self.procs,
            "runtime": self.runtime,
            "walltime": self.walltime,
            "site_code": self._view(self._site_code),
        }
        if self.has_outcomes:
            columns["start_time"] = self.start_time
            columns["completion_time"] = self.completion_time
            columns["state"] = self.state_code
            columns["killed"] = self.killed
            columns["reallocation_count"] = self.reallocation_count
            columns["outage_kills"] = self.outage_kills
            columns["cluster_code"] = self._view(self._cluster_code)
        return columns, list(self._sites), list(self._clusters)

    def append(
        self,
        job_id: int,
        submit_time: float,
        procs: int,
        runtime: float,
        walltime: float,
        site: Optional[str] = None,
    ) -> int:
        """Append one row of static fields; returns its index."""
        index = self._n
        if index == self._job_id.shape[0]:
            self._grow()
        self._job_id[index] = job_id
        self._submit[index] = submit_time
        self._procs[index] = procs
        self._runtime[index] = runtime
        self._walltime[index] = walltime
        code = self._site_index.get(site)
        if code is None:
            code = len(self._sites)
            self._sites.append(site)
            self._site_index[site] = code
        self._site_code[index] = code
        self._n = index + 1
        return index

    def add_job(self, job: Job, final: bool = False) -> int:
        """Append one :class:`Job`; snapshots dynamic state when present.

        With ``final=True`` the outcome columns are written unconditionally
        — the snapshot path of a finished run, where even a job that never
        started (rejected, or still pending at a truncated horizon) has a
        definitive final state.
        """
        index = self.append(
            job.job_id,
            job.submit_time,
            job.procs,
            job.runtime,
            job.walltime,
            site=job.origin_site,
        )
        if (
            final
            or job.state is not JobState.PENDING
            or job.start_time is not None
            or job.completion_time is not None
        ):
            self.set_outcome(
                index,
                start_time=job.start_time,
                completion_time=job.completion_time,
                state=job.state,
                killed=job.killed,
                reallocation_count=job.reallocation_count,
                outage_kills=job.outage_kills,
                final_cluster=job.cluster,
            )
        return index

    def extend(self, jobs: Iterable[Job]) -> None:
        """Append every job of an iterable (streaming-friendly)."""
        for job in jobs:
            self.add_job(job)

    def set_outcome(
        self,
        index: int,
        start_time: Optional[float] = None,
        completion_time: Optional[float] = None,
        state: JobState = JobState.PENDING,
        killed: bool = False,
        reallocation_count: int = 0,
        outage_kills: int = 0,
        final_cluster: Optional[str] = None,
    ) -> None:
        """Record the outcome of row ``index`` (``None`` times become NaN)."""
        if self._start is None:
            self._alloc_outcomes()
        self._start[index] = math.nan if start_time is None else start_time
        self._completion[index] = math.nan if completion_time is None else completion_time
        self._state[index] = _STATE_CODE[state]
        self._killed[index] = killed
        self._realloc[index] = reallocation_count
        self._outage[index] = outage_kills
        code = self._cluster_index.get(final_cluster)
        if code is None:
            code = len(self._clusters)
            self._clusters.append(final_cluster)
            self._cluster_index[final_cluster] = code
        self._cluster_code[index] = code

    def _alloc_outcomes(self) -> None:
        capacity = self._job_id.shape[0]
        self._start = np.full(capacity, np.nan, dtype=np.float64)
        self._completion = np.full(capacity, np.nan, dtype=np.float64)
        self._state = np.full(capacity, _STATE_CODE[JobState.PENDING], dtype=np.int8)
        self._killed = np.zeros(capacity, dtype=bool)
        self._realloc = np.zeros(capacity, dtype=np.int32)
        self._outage = np.zeros(capacity, dtype=np.int32)
        self._cluster_code = np.zeros(capacity, dtype=np.int32)

    def _grow(self) -> None:
        def enlarge(column: np.ndarray, fill=None) -> np.ndarray:
            grown = np.empty(column.shape[0] * 2, dtype=column.dtype)
            grown[: column.shape[0]] = column
            if fill is not None:
                grown[column.shape[0]:] = fill
            return grown

        self._job_id = enlarge(self._job_id)
        self._submit = enlarge(self._submit)
        self._procs = enlarge(self._procs)
        self._runtime = enlarge(self._runtime)
        self._walltime = enlarge(self._walltime)
        self._site_code = enlarge(self._site_code)
        if self._start is not None:
            self._start = enlarge(self._start, fill=np.nan)
            self._completion = enlarge(self._completion, fill=np.nan)
            self._state = enlarge(self._state, fill=_STATE_CODE[JobState.PENDING])
            self._killed = enlarge(self._killed, fill=False)
            self._realloc = enlarge(self._realloc, fill=0)
            self._outage = enlarge(self._outage, fill=0)
            self._cluster_code = enlarge(self._cluster_code, fill=0)

    # ------------------------------------------------------------------ #
    # Columns                                                            #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def has_outcomes(self) -> bool:
        """True once any row carried dynamic state."""
        return self._start is not None

    def _view(self, column: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if column is None:
            return None
        view = column[: self._n]
        view.flags.writeable = False
        return view

    @property
    def job_id(self) -> np.ndarray:
        return self._view(self._job_id)

    @property
    def submit_time(self) -> np.ndarray:
        return self._view(self._submit)

    @property
    def procs(self) -> np.ndarray:
        return self._view(self._procs)

    @property
    def runtime(self) -> np.ndarray:
        return self._view(self._runtime)

    @property
    def walltime(self) -> np.ndarray:
        return self._view(self._walltime)

    @property
    def start_time(self) -> Optional[np.ndarray]:
        return self._view(self._start)

    @property
    def completion_time(self) -> Optional[np.ndarray]:
        return self._view(self._completion)

    @property
    def state_code(self) -> Optional[np.ndarray]:
        return self._view(self._state)

    @property
    def killed(self) -> Optional[np.ndarray]:
        return self._view(self._killed)

    @property
    def reallocation_count(self) -> Optional[np.ndarray]:
        return self._view(self._realloc)

    @property
    def outage_kills(self) -> Optional[np.ndarray]:
        return self._view(self._outage)

    def site(self, index: int) -> Optional[str]:
        """Origin site of row ``index`` (interned)."""
        return self._sites[self._site_code[index]]

    def nbytes(self) -> int:
        """Bytes held by the live region of every allocated column."""
        columns = [
            self._job_id, self._submit, self._procs, self._runtime,
            self._walltime, self._site_code, self._start, self._completion,
            self._state, self._killed, self._realloc, self._outage,
            self._cluster_code,
        ]
        return sum(c[: self._n].nbytes for c in columns if c is not None)

    # ------------------------------------------------------------------ #
    # Aggregation (vectorised, no per-object walks)                      #
    # ------------------------------------------------------------------ #
    @property
    def completed_count(self) -> int:
        """Number of rows in the COMPLETED state (0 without outcomes)."""
        if self._state is None:
            return 0
        return int(np.count_nonzero(self.state_code == _STATE_CODE[JobState.COMPLETED]))

    @property
    def killed_count(self) -> int:
        """Number of rows killed at their walltime."""
        if self._killed is None:
            return 0
        return int(np.count_nonzero(self.killed))

    @property
    def rejected_count(self) -> int:
        """Number of rows in the REJECTED state."""
        if self._state is None:
            return 0
        return int(np.count_nonzero(self.state_code == _STATE_CODE[JobState.REJECTED]))

    @property
    def disrupted_count(self) -> int:
        """Number of rows killed at least once by an outage."""
        if self._outage is None:
            return 0
        return int(np.count_nonzero(self.outage_kills > 0))

    def response_times(self) -> np.ndarray:
        """Response times of rows with a completion time (compact array)."""
        if self._completion is None:
            return np.empty(0, dtype=np.float64)
        completion = self.completion_time
        mask = ~np.isnan(completion)
        return completion[mask] - self.submit_time[mask]

    def wait_times(self) -> np.ndarray:
        """Wait times of rows that started (compact array)."""
        if self._start is None:
            return np.empty(0, dtype=np.float64)
        start = self.start_time
        mask = ~np.isnan(start)
        return start[mask] - self.submit_time[mask]

    def mean_response_time(self) -> float:
        """Mean response time over completed rows (0.0 if none)."""
        values = self.response_times()
        return float(values.mean()) if values.size else 0.0

    def makespan(self) -> float:
        """Latest completion time (0.0 without any completion)."""
        if self._completion is None:
            return 0.0
        completion = self.completion_time
        mask = ~np.isnan(completion)
        return float(completion[mask].max()) if mask.any() else 0.0

    def total_core_seconds(self) -> float:
        """Σ procs · min(runtime, walltime) over all rows (demand volume)."""
        if self._n == 0:
            return 0.0
        effective = np.minimum(self.runtime, self.walltime)
        return float(np.dot(self.procs.astype(np.float64), effective))

    def completion_by_job_id(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(job_ids, completion_times)`` of completed rows, id-sorted."""
        if self._completion is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        completion = self.completion_time
        mask = ~np.isnan(completion)
        ids = self.job_id[mask]
        times = completion[mask]
        order = np.argsort(ids, kind="stable")
        return ids[order], times[order]

    # ------------------------------------------------------------------ #
    # Chunked object views                                               #
    # ------------------------------------------------------------------ #
    def chunks(self, chunk_size: int = 65536) -> Iterator[slice]:
        """Yield row slices covering the table in ``chunk_size`` pieces."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        for lo in range(0, self._n, chunk_size):
            yield slice(lo, min(lo + chunk_size, self._n))

    def job(self, index: int) -> Job:
        """Materialise one row as a pristine :class:`Job`."""
        if not 0 <= index < self._n:
            raise IndexError(f"row {index} out of range (table holds {self._n})")
        return Job(
            job_id=int(self._job_id[index]),
            submit_time=float(self._submit[index]),
            procs=int(self._procs[index]),
            runtime=float(self._runtime[index]),
            walltime=float(self._walltime[index]),
            origin_site=self._sites[self._site_code[index]],
        )

    def iter_jobs(self) -> Iterator[Job]:
        """Materialise every row as a pristine :class:`Job`, lazily."""
        for index in range(self._n):
            yield self.job(index)

    def record(self, index: int):
        """Materialise one row as a :class:`~repro.core.results.JobRecord`.

        The per-id access path of a table-backed result: one object, not a
        per-table walk.  Requires outcome columns (a record's state is
        definitive by construction).
        """
        from repro.core.results import JobRecord

        if not self.has_outcomes:
            raise ValueError("record() needs outcome columns (no outcomes recorded)")
        if not 0 <= index < self._n:
            raise IndexError(f"row {index} out of range (table holds {self._n})")
        start = float(self._start[index])
        completion = float(self._completion[index])
        return JobRecord(
            job_id=int(self._job_id[index]),
            submit_time=float(self._submit[index]),
            procs=int(self._procs[index]),
            runtime=float(self._runtime[index]),
            walltime=float(self._walltime[index]),
            origin_site=self._sites[self._site_code[index]],
            final_cluster=self._clusters[self._cluster_code[index]],
            start_time=None if math.isnan(start) else start,
            completion_time=None if math.isnan(completion) else completion,
            state=_STATE_ORDER[self._state[index]],
            killed=bool(self._killed[index]),
            reallocation_count=int(self._realloc[index]),
            outage_kills=int(self._outage[index]),
        )

    def record_dicts(self, sort_by_job_id: bool = True) -> List[Dict[str, Any]]:
        """Serialized record dicts of every row, straight from the columns.

        Shape-identical to ``JobRecord.to_dict()`` per row, but built from
        one column pass without materialising any intermediate
        :class:`~repro.core.results.JobRecord` — the canonical (ascending
        job-id) JSON payload of a result document.  Requires outcome
        columns on a non-empty table.
        """
        n = self._n
        if n == 0:
            return []
        if not self.has_outcomes:
            raise ValueError("record_dicts() needs outcome columns (no outcomes recorded)")
        if sort_by_job_id:
            order = np.argsort(self._job_id[:n], kind="stable")
            take = lambda column: column[:n][order].tolist()  # noqa: E731
        else:
            take = lambda column: column[:n].tolist()  # noqa: E731
        job_ids = take(self._job_id)
        submits = take(self._submit)
        procs = take(self._procs)
        runtimes = take(self._runtime)
        walltimes = take(self._walltime)
        site_codes = take(self._site_code)
        starts = take(self._start)
        completions = take(self._completion)
        states = take(self._state)
        killed = take(self._killed)
        reallocs = take(self._realloc)
        outages = take(self._outage)
        cluster_codes = take(self._cluster_code)
        sites = self._sites
        clusters = self._clusters
        return [
            {
                "job_id": job_ids[i],
                "submit_time": submits[i],
                "procs": procs[i],
                "runtime": runtimes[i],
                "walltime": walltimes[i],
                "origin_site": sites[site_codes[i]],
                "final_cluster": clusters[cluster_codes[i]],
                "start_time": None if math.isnan(starts[i]) else starts[i],
                "completion_time": (
                    None if math.isnan(completions[i]) else completions[i]
                ),
                "state": _STATE_ORDER[states[i]].value,
                "killed": killed[i],
                "reallocation_count": reallocs[i],
                "outage_kills": outages[i],
            }
            for i in range(n)
        ]

    def records(self, chunk_size: int = 65536) -> Iterator[list]:
        """Yield lists of :class:`~repro.core.results.JobRecord` per chunk.

        Reads each column exactly once per chunk (one NumPy slice per
        column) instead of walking per-object attributes, which is what
        keeps result snapshotting linear-with-small-constant at archive
        scale.
        """
        from repro.core.results import JobRecord

        if not self.has_outcomes:
            raise ValueError("records() needs outcome columns (no outcomes recorded)")
        for rows in self.chunks(chunk_size):
            job_ids = self._job_id[rows]
            submits = self._submit[rows]
            procs = self._procs[rows]
            runtimes = self._runtime[rows]
            walltimes = self._walltime[rows]
            site_codes = self._site_code[rows]
            starts = self._start[rows]
            completions = self._completion[rows]
            states = self._state[rows]
            killed = self._killed[rows]
            reallocs = self._realloc[rows]
            outages = self._outage[rows]
            cluster_codes = self._cluster_code[rows]
            sites = self._sites
            clusters = self._clusters
            chunk = [
                JobRecord(
                    job_id=int(job_ids[i]),
                    submit_time=float(submits[i]),
                    procs=int(procs[i]),
                    runtime=float(runtimes[i]),
                    walltime=float(walltimes[i]),
                    origin_site=sites[site_codes[i]],
                    final_cluster=clusters[cluster_codes[i]],
                    start_time=None if math.isnan(starts[i]) else float(starts[i]),
                    completion_time=(
                        None if math.isnan(completions[i]) else float(completions[i])
                    ),
                    state=_STATE_ORDER[states[i]],
                    killed=bool(killed[i]),
                    reallocation_count=int(reallocs[i]),
                    outage_kills=int(outages[i]),
                )
                for i in range(job_ids.shape[0])
            ]
            yield chunk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobTable(rows={self._n}, outcomes={self.has_outcomes}, "
            f"bytes={self.nbytes()})"
        )
