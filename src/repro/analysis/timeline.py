"""Time series rebuilt from a run's job records.

The simulation itself does not log continuous state (that would be costly
for hundreds of thousands of events); instead, the start/completion times
stored in the :class:`~repro.core.results.RunResult` are enough to rebuild
the two time series the scheduling literature usually plots:

* processor utilisation (used cores over time), optionally per cluster;
* number of waiting jobs over time (submitted but not yet started).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import RunResult
from repro.platform.spec import PlatformSpec


@dataclass(frozen=True, slots=True)
class TimeSeries:
    """A right-continuous step function: value ``values[i]`` holds from
    ``times[i]`` (inclusive) until ``times[i+1]`` (exclusive)."""

    times: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have the same length")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be non-decreasing")

    def value_at(self, time: float) -> float:
        """Value of the step function at ``time`` (0 before the first step)."""
        value = 0.0
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            value = v
        return value

    @property
    def peak(self) -> float:
        """Maximum value reached."""
        return max(self.values, default=0.0)

    def mean_over(self, start: float, end: float) -> float:
        """Time-weighted mean value over ``[start, end)``."""
        if end <= start:
            return self.value_at(start)
        total = 0.0
        boundaries = [start] + [t for t in self.times if start < t < end] + [end]
        for left, right in zip(boundaries, boundaries[1:]):
            total += self.value_at(left) * (right - left)
        return total / (end - start)


def _step_series(deltas: List[Tuple[float, float]]) -> TimeSeries:
    """Cumulative step function from (time, delta) events."""
    if not deltas:
        return TimeSeries(times=(), values=())
    deltas.sort(key=lambda item: item[0])
    times: List[float] = []
    values: List[float] = []
    current = 0.0
    for time, delta in deltas:
        current += delta
        if times and times[-1] == time:
            values[-1] = current
        else:
            times.append(time)
            values.append(current)
    return TimeSeries(times=tuple(times), values=tuple(values))


def utilization_timeline(
    result: RunResult,
    platform: Optional[PlatformSpec] = None,
    cluster: Optional[str] = None,
) -> TimeSeries:
    """Used processors over time.

    Parameters
    ----------
    result:
        The run to analyse.
    platform:
        When given, the values are normalised by the platform's (or the
        cluster's) processor count, yielding a utilisation in [0, 1].
    cluster:
        Restrict the series to one cluster (by final cluster of each job).
    """
    deltas: List[Tuple[float, float]] = []
    for record in result:
        if record.start_time is None or record.completion_time is None:
            continue
        if cluster is not None and record.final_cluster != cluster:
            continue
        deltas.append((record.start_time, float(record.procs)))
        deltas.append((record.completion_time, -float(record.procs)))
    series = _step_series(deltas)
    if platform is None:
        return series
    if cluster is not None:
        spec = platform.get(cluster)
        if spec is None:
            raise ValueError(f"cluster {cluster!r} is not part of platform {platform.name}")
        capacity = spec.procs
    else:
        capacity = platform.total_procs
    return TimeSeries(
        times=series.times,
        values=tuple(value / capacity for value in series.values),
    )


def waiting_jobs_timeline(result: RunResult, cluster: Optional[str] = None) -> TimeSeries:
    """Number of waiting jobs (submitted, not yet started) over time."""
    deltas: List[Tuple[float, float]] = []
    for record in result:
        if record.start_time is None:
            continue
        if cluster is not None and record.final_cluster != cluster:
            continue
        if record.start_time <= record.submit_time:
            continue
        deltas.append((record.submit_time, 1.0))
        deltas.append((record.start_time, -1.0))
    return _step_series(deltas)


def per_cluster_utilization(
    result: RunResult, platform: PlatformSpec
) -> Dict[str, TimeSeries]:
    """Utilisation series for every cluster of the platform."""
    return {
        spec.name: utilization_timeline(result, platform, cluster=spec.name)
        for spec in platform
    }
