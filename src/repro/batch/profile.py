"""Availability profiles.

An :class:`AvailabilityProfile` is the step function ``time -> number of
free processors`` that a batch scheduler maintains to plan reservations.
Both FCFS and conservative back-filling are expressed as searches over this
profile: *find the earliest interval of length d during which at least p
processors are free*, then subtract ``p`` processors over that interval.

The profile is a sorted list of breakpoints ``(time, free)``; the last
breakpoint extends to infinity.  All planning in :mod:`repro.batch.policies`
works on copies of the live profile, so estimation queries never mutate the
scheduler state.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Iterator, Tuple


class ProfileError(ValueError):
    """Raised when a reservation would drive the free-processor count negative."""


class AvailabilityProfile:
    """Step function of free processors over time.

    Parameters
    ----------
    total_procs:
        Capacity of the cluster; the profile starts fully free.
    start_time:
        Left edge of the profile.  Queries before this time are clamped to
        it (the past is irrelevant for planning).
    """

    __slots__ = ("total_procs", "_times", "_free")

    def __init__(self, total_procs: int, start_time: float = 0.0) -> None:
        if total_procs <= 0:
            raise ValueError(f"total_procs must be positive, got {total_procs}")
        self.total_procs = int(total_procs)
        self._times: list[float] = [float(start_time)]
        self._free: list[int] = [int(total_procs)]

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def start_time(self) -> float:
        """Left edge of the profile."""
        return self._times[0]

    def breakpoints(self) -> Iterator[Tuple[float, int]]:
        """Iterate over ``(time, free_procs)`` breakpoints."""
        return zip(self._times, self._free)

    def free_at(self, time: float) -> int:
        """Number of free processors at ``time`` (clamped to the profile start)."""
        if time <= self._times[0]:
            return self._free[0]
        idx = bisect_right(self._times, time) - 1
        return self._free[idx]

    def min_free_over(self, start: float, end: float) -> int:
        """Minimum number of free processors over the interval ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        start = max(start, self._times[0])
        idx = bisect_right(self._times, start) - 1
        lowest = self._free[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end:
            lowest = min(lowest, self._free[idx])
            idx += 1
        return lowest

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #
    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` (if missing) and return its index."""
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            # Before the profile start: extend the profile to the left with
            # the capacity value so reservations starting earlier are valid.
            self._times.insert(0, time)
            self._free.insert(0, self.total_procs)
            return 0
        if self._times[idx] == time:
            return idx
        self._times.insert(idx + 1, time)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def subtract(self, start: float, end: float, procs: int) -> None:
        """Remove ``procs`` free processors over ``[start, end)``.

        Raises
        ------
        ProfileError
            If the reservation would make the free count negative anywhere
            in the interval.
        """
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        if self.min_free_over(start, end) < procs:
            raise ProfileError(
                f"cannot reserve {procs} procs over [{start}, {end}): "
                f"only {self.min_free_over(start, end)} free"
            )
        i_start = self._ensure_breakpoint(start)
        i_end = self._ensure_breakpoint(end) if math.isfinite(end) else len(self._times)
        for i in range(i_start, i_end):
            self._free[i] -= procs

    def add(self, start: float, end: float, procs: int) -> None:
        """Release ``procs`` processors over ``[start, end)`` (inverse of subtract)."""
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        i_start = self._ensure_breakpoint(start)
        i_end = self._ensure_breakpoint(end) if math.isfinite(end) else len(self._times)
        for i in range(i_start, i_end):
            new_value = self._free[i] + procs
            if new_value > self.total_procs:
                raise ProfileError(
                    f"releasing {procs} procs over [{start}, {end}) exceeds capacity "
                    f"{self.total_procs}"
                )
            self._free[i] = new_value

    # ------------------------------------------------------------------ #
    # Planning queries                                                   #
    # ------------------------------------------------------------------ #
    def earliest_slot(self, procs: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``procs`` free during ``[t, t+duration)``.

        Returns ``math.inf`` when the request can never be satisfied (more
        processors than the cluster owns).
        """
        if procs > self.total_procs:
            return math.inf
        if procs <= 0:
            raise ValueError(f"procs must be positive, got {procs}")
        earliest = max(earliest, self._times[0])
        if duration <= 0:
            # A zero-length reservation only needs an instant with enough
            # free processors.
            idx = bisect_right(self._times, earliest) - 1
            while idx < len(self._times):
                if self._free[idx] >= procs:
                    return max(earliest, self._times[idx])
                idx += 1
            return math.inf

        idx = bisect_right(self._times, earliest) - 1
        candidate = earliest
        while True:
            # Scan forward from `candidate` checking that every segment that
            # intersects [candidate, candidate + duration) has enough procs.
            end_needed = candidate + duration
            scan = idx
            ok = True
            while scan < len(self._times):
                seg_start = self._times[scan]
                seg_end = self._times[scan + 1] if scan + 1 < len(self._times) else math.inf
                if seg_end <= candidate:
                    scan += 1
                    continue
                if seg_start >= end_needed:
                    break
                if self._free[scan] < procs:
                    ok = False
                    # Restart the search at the end of the blocking segment.
                    candidate = seg_end
                    idx = scan + 1
                    break
                scan += 1
            if ok:
                return candidate
            if idx >= len(self._times):
                # Blocking segment was the final (infinite) one.
                return math.inf

    def reserve(self, procs: int, duration: float, earliest: float) -> float:
        """Find the earliest slot and subtract the reservation; return its start."""
        start = self.earliest_slot(procs, duration, earliest)
        if not math.isfinite(start):
            return start
        if duration > 0:
            self.subtract(start, start + duration, procs)
        return start

    # ------------------------------------------------------------------ #
    # Construction helpers                                               #
    # ------------------------------------------------------------------ #
    def copy(self) -> "AvailabilityProfile":
        """Independent copy (used for what-if estimation queries)."""
        clone = AvailabilityProfile.__new__(AvailabilityProfile)
        clone.total_procs = self.total_procs
        clone._times = list(self._times)
        clone._free = list(self._free)
        return clone

    @classmethod
    def from_reservations(
        cls,
        total_procs: int,
        start_time: float,
        reservations: Iterable[Tuple[float, float, int]],
    ) -> "AvailabilityProfile":
        """Build a profile from ``(start, end, procs)`` reservations."""
        profile = cls(total_procs, start_time)
        for start, end, procs in reservations:
            profile.subtract(max(start, start_time), end, procs)
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points = ", ".join(f"({t:.0f}:{f})" for t, f in zip(self._times, self._free))
        return f"AvailabilityProfile(cap={self.total_procs}, [{points}])"
