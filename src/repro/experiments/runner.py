"""Running experiments and sweeps.

The :class:`ExperimentRunner` is a thin facade over the campaign engine
(:mod:`repro.experiments.campaign`) and the persistent result store
(:mod:`repro.store`).  It keeps the historical per-process API — used by
:mod:`repro.experiments.tables`, the figures and the benchmark suite —
while delegating execution:

* single runs go through :func:`~repro.experiments.campaign.execute_config`
  with a three-level cache (in-memory dict → optional on-disk store →
  simulate);
* :meth:`ExperimentRunner.sweep` runs the whole grid as a campaign, which
  deduplicates shared baselines and can fan the independent simulations
  out over a process pool (``workers``).

The in-memory caches preserve the original behaviour: repeated ``run()``
calls return the *same* object, and the sixteen tables fed by the same 364
experiments never re-simulate them within a process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.batch.job import Job
from repro.core.metrics import ComparisonMetrics, compare_tables
from repro.core.results import RunResult
from repro.experiments.campaign import (
    execute_config,
    fresh_workload,
    run_campaign,
)
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.store import ResultStore


@dataclass(slots=True)
class SweepResult:
    """Metrics of a full sweep, indexed by (batch policy, heuristic, scenario)."""

    config: SweepConfig
    metrics: Dict[Tuple[str, str, str], ComparisonMetrics] = field(default_factory=dict)

    def get(self, batch_policy: str, heuristic: str, scenario: str) -> ComparisonMetrics:
        """Metrics of one cell of the sweep."""
        return self.metrics[(batch_policy, heuristic, scenario)]

    def cells(self) -> Dict[Tuple[str, str, str], ComparisonMetrics]:
        """All cells (copy)."""
        return dict(self.metrics)


class ExperimentRunner:
    """Executes experiment configurations with caching.

    Parameters
    ----------
    verbose:
        When true, one progress line is printed per simulated experiment
        (useful when regenerating the full table set from a terminal).
    store:
        Optional persistent result store — a :class:`ResultStore` or a
        directory path.  When given, results and metrics survive the
        process: a warm store regenerates tables with zero re-simulations.
    workers:
        Default parallelism of :meth:`sweep`.  ``None``, 0 or 1 keeps the
        historical serial behaviour; ``N > 1`` runs sweeps on a process
        pool of ``N`` workers.
    """

    def __init__(
        self,
        verbose: bool = False,
        store: Union[ResultStore, str, Path, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.verbose = verbose
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.workers = workers
        #: number of simulations actually executed by this runner
        self.simulated_runs = 0
        self._result_cache: Dict[ExperimentConfig, RunResult] = {}
        self._metrics_cache: Dict[ExperimentConfig, ComparisonMetrics] = {}

    # ------------------------------------------------------------------ #
    # Workload and runs                                                  #
    # ------------------------------------------------------------------ #
    def workload(self, config: ExperimentConfig) -> List[Job]:
        """Fresh copies of the trace of ``config``.

        Delegates to the campaign engine's process-local template cache,
        so the facade and the engine never generate (or hold) the same
        trace twice in one process.
        """
        return fresh_workload(config)

    def run(self, config: ExperimentConfig) -> RunResult:
        """Run one experiment (memory cache → store → simulate)."""
        cached = self._result_cache.get(config)
        if cached is not None:
            return cached
        result: Optional[RunResult] = None
        if self.store is not None:
            result = self.store.get_result(config)
        if result is None:
            result = execute_config(config)
            self.simulated_runs += 1
            if self.store is not None:
                self.store.put_result(config, result)
            if self.verbose:  # pragma: no cover - cosmetic
                print(f"[runner] {config.label()}: {len(result)} jobs, "
                      f"{result.total_reallocations} reallocations")
        self._result_cache[config] = result
        return result

    def baseline(self, config: ExperimentConfig) -> RunResult:
        """Run (or fetch) the reference experiment of ``config``."""
        return self.run(config.baseline())

    def metrics(self, config: ExperimentConfig) -> ComparisonMetrics:
        """The paper's four metrics for one reallocation configuration."""
        if config.is_baseline:
            raise ValueError("metrics() needs a reallocation configuration, not a baseline")
        cached = self._metrics_cache.get(config)
        if cached is not None:
            return cached
        metrics: Optional[ComparisonMetrics] = None
        if self.store is not None:
            metrics = self.store.get_metrics(config)
        if metrics is None:
            baseline = self.baseline(config)
            realloc = self.run(config)
            # Compare columnar: on table-backed results (simulated or
            # npz-loaded) this never materialises a per-job object.
            metrics = compare_tables(
                baseline.to_table(),
                realloc.to_table(),
                reallocations=realloc.total_reallocations,
            )
            if self.store is not None:
                self.store.put_metrics(config, metrics)
        self._metrics_cache[config] = metrics
        return metrics

    # ------------------------------------------------------------------ #
    # Sweeps                                                             #
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        sweep_config: SweepConfig,
        workers: Optional[int] = None,
        fresh: bool = False,
    ) -> SweepResult:
        """Run a full sweep (one reallocation algorithm, one platform flavour).

        The sweep executes as a campaign: shared baselines run once, known
        outcomes come from the in-memory caches or the store, and the
        remaining simulations run serially or on ``workers`` processes
        (defaulting to the runner's ``workers`` setting).  ``fresh``
        distrusts the store and re-simulates everything this runner has
        not already computed in memory, refreshing the store.
        """
        if workers is None:
            workers = self.workers
        configs = sweep_config.configs()
        progress = self._progress if self.verbose else None
        campaign = run_campaign(
            configs,
            workers=workers,
            store=self.store,
            fresh=fresh,
            known_results=self._result_cache,
            known_metrics=self._metrics_cache,
            progress=progress,
        )
        self.simulated_runs += campaign.stats.simulated
        self._result_cache.update(campaign.results)
        self._metrics_cache.update(campaign.metrics)
        result = SweepResult(config=sweep_config)
        for config in configs:
            key = (config.batch_policy, config.heuristic, config.scenario)
            result.metrics[key] = campaign.metrics[config]
        return result

    def _progress(
        self, config: ExperimentConfig, result: RunResult, source: str
    ) -> None:  # pragma: no cover - cosmetic
        print(f"[campaign] {config.label()} ({source}): {len(result)} jobs, "
              f"{result.total_reallocations} reallocations")

    # ------------------------------------------------------------------ #
    # Cache management                                                   #
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop this runner's cached results and metrics.

        The persistent store (when configured) is left untouched; use
        ``runner.store.clear()`` to wipe it as well.  Workload templates
        live in a process-wide cache shared with the campaign engine —
        call :func:`repro.experiments.campaign.clear_trace_cache` to drop
        those (it affects every runner in the process).
        """
        self._result_cache.clear()
        self._metrics_cache.clear()

    @property
    def cached_runs(self) -> int:
        """Number of simulation results currently cached in memory."""
        return len(self._result_cache)


_SHARED_RUNNER: Optional[ExperimentRunner] = None


def shared_runner() -> ExperimentRunner:
    """Process-wide runner shared by the benchmark modules."""
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = ExperimentRunner()
    return _SHARED_RUNNER
