"""The discrete-event simulation kernel.

The kernel owns a simulated clock and a binary heap of :class:`Event`
objects.  Model components (batch servers, the meta-scheduler, the
reallocation agent, workload clients) schedule callbacks on the kernel and
the kernel fires them in non-decreasing time order.

Design notes
------------
* The kernel is deliberately synchronous and single-threaded: all of the
  paper's behaviour is sequential decision making over queue states, so a
  coroutine/process abstraction (as in SimPy or SimGrid's MSG layer) would
  only add overhead.  Callbacks run to completion and may schedule further
  events.
* Determinism: events are ordered by ``(time, priority, sequence)``; the
  sequence counter makes insertion order the final tie-breaker, so repeated
  runs of the same scenario produce byte-identical results.
* Cancellation is lazy: cancelled events stay in the heap and are skipped
  when popped, which keeps cancellation O(1) amortised.  The kernel keeps
  an exact live (non-cancelled) event count, and when cancelled entries
  exceed half of the heap it compacts the heap in one O(n) pass — so
  cancellation-heavy models (e.g. multi-submission runs) never accumulate
  unbounded dead entries.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventType
from repro.sim.trace import EventTrace


class SimulationError(RuntimeError):
    """Raised on invalid kernel usage (e.g. scheduling in the past)."""


#: Heaps smaller than this are never compacted (rebuilding a tiny heap
#: costs more than skipping its few dead entries).
COMPACTION_MIN_HEAP = 64


class SimulationKernel:
    """Event loop with a simulated clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.  Traces in the
        Standard Workload Format are relative to 0, so the default is 0.
    trace:
        Optional :class:`EventTrace` recording every fired event.

    Examples
    --------
    >>> kernel = SimulationKernel()
    >>> fired = []
    >>> _ = kernel.schedule_at(10.0, fired.append, 10.0)
    >>> _ = kernel.schedule_at(5.0, fired.append, 5.0)
    >>> kernel.run()
    >>> fired
    [5.0, 10.0]
    """

    def __init__(self, start_time: float = 0.0, trace: Optional[EventTrace] = None) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._live = 0
        self._cancelled_in_heap = 0
        self.trace = trace
        #: Number of events fired so far (excluding cancelled ones).
        self.fired_events = 0
        #: Number of heap compaction passes performed so far.
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # Clock                                                              #
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap size, including not-yet-collected cancelled events."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Scheduling                                                         #
    # ------------------------------------------------------------------ #
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        event_type: EventType = EventType.GENERIC,
        priority: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past or is not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, requested={time})"
            )
        if priority is None:
            priority = int(event_type)
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
            event_type=event_type,
        )
        self._sequence += 1
        event.on_cancel = self._note_cancelled
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        event_type: EventType = EventType.GENERIC,
        priority: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay, callback, *args, event_type=event_type, priority=priority
        )

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns
        -------
        bool
            ``True`` if an event was fired, ``False`` if the heap is empty
            (the clock is left untouched in that case).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            event.popped = True
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._live -= 1
            self._now = event.time
            if self.trace is not None:
                self.trace.record(event)
            self.fired_events += 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap is exhausted or ``until`` is reached.

        When ``until`` is given, events with a timestamp strictly greater
        than ``until`` are left in the heap and the clock is advanced to
        ``until``.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                next_time = self._peek_time()
                if until is not None and next_time is not None and next_time > until:
                    break
                if not self.step():
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            event = heapq.heappop(self._heap)
            event.popped = True
            self._cancelled_in_heap -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def _note_cancelled(self, event: Event) -> None:
        """Event hook: maintain live accounting and compact when worthwhile.

        Events cancelled after leaving the heap (already fired or skipped)
        do not affect the counters.
        """
        if event.popped:
            return
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= COMPACTION_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries (one O(n) pass).

        The heap invariant is restored by ``heapify``; the total order of
        events is strict (the sequence counter is unique), so compaction
        cannot change the firing order and determinism is preserved.
        """
        live: list[Event] = []
        for event in self._heap:
            if event.cancelled:
                event.popped = True
            else:
                live.append(event)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationKernel(now={self._now:.3f}, pending={self._live}, "
            f"heap={len(self._heap)})"
        )
