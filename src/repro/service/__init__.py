"""The online metascheduler service shell.

Everything below :mod:`repro.service` turns the batch-simulation stack
into a *long-running* grid metascheduler: an asyncio admission pipeline
(:class:`MetaSchedulerService`) drains a bounded submit queue in batches
per scheduler heartbeat, maps each batch through the bulk ECT path of the
meta-scheduler, and applies explicit backpressure once the queue passes a
high-water mark.  A :class:`Clock` abstraction makes the simulation
kernel swappable for wall-clock time, an in-process
:class:`ServiceClient` and a dependency-light asyncio HTTP listener
(:class:`ServiceHTTP`) expose submit / status / cancel / health, and
:mod:`repro.service.loadgen` provides the ``repro bombard`` open-loop
load generator.
"""

from repro.service.clock import Clock, RealTimeClock, VirtualClock, make_clock
from repro.service.client import ServiceClient
from repro.service.http import HTTPServiceClient, ServiceHTTP
from repro.service.loadgen import (
    BombardReport,
    bombard,
    latency_summary,
    swf_specs,
    synthetic_specs,
)
from repro.service.service import (
    BackpressurePolicy,
    MetaSchedulerService,
    ServiceConfig,
    SubmitRejected,
    TicketState,
)

__all__ = [
    "BackpressurePolicy",
    "BombardReport",
    "Clock",
    "HTTPServiceClient",
    "MetaSchedulerService",
    "RealTimeClock",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTP",
    "SubmitRejected",
    "TicketState",
    "VirtualClock",
    "bombard",
    "latency_summary",
    "make_clock",
    "swf_specs",
    "synthetic_specs",
]
