"""Tests for declarative sweeps (:mod:`repro.experiments.sweeps`)."""

from __future__ import annotations

import pytest

from repro.core.heuristics import HEURISTIC_NAMES
from repro.experiments.campaign import campaign_configs, plan_units
from repro.experiments.config import (
    BATCH_POLICIES,
    MAPPING_POLICY_NAMES,
    ExperimentConfig,
    SweepConfig,
    bench_scale,
)
from repro.experiments.sweeps import (
    SWEEP_NAMES,
    SWEEP_REGISTRY,
    SweepSpec,
    get_sweep,
    paper_sweep,
)
from repro.grid.metascheduler import MappingPolicy


def small_spec(**overrides) -> SweepSpec:
    defaults = dict(
        name="test-grid",
        scenarios=("jan",),
        batch_policies=("fcfs",),
        algorithms=("standard",),
        heuristics=("mct",),
        target_jobs=40,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_cell_count_is_product_of_axes(self):
        spec = small_spec(
            heuristics=("mct", "minmin"),
            reallocation_periods=(1800.0, 3600.0),
            reallocation_thresholds=(0.0, 60.0, 600.0),
        )
        assert len(spec.configs()) == 2 * 2 * 3

    def test_expansion_is_deterministic(self):
        spec = small_spec(heuristics=("mct", "minmin"), trace_fractions=(0.5, 1.0))
        assert spec.configs() == spec.configs()

    def test_expansion_order_outer_to_inner(self):
        spec = small_spec(
            scenarios=("jan", "feb"), reallocation_periods=(1800.0, 3600.0)
        )
        configs = spec.configs()
        # scenario is the outermost loop, period an inner one
        assert [c.scenario for c in configs] == ["jan", "jan", "feb", "feb"]
        assert [c.reallocation_period for c in configs] == [1800.0, 3600.0] * 2

    def test_trace_fraction_scales_the_bench_scale(self):
        spec = small_spec(trace_fractions=(0.5, 1.0))
        half, full = spec.configs()
        base = bench_scale("jan", spec.target_jobs)
        assert half.scale == base * 0.5
        assert full.scale == base

    def test_units_share_baselines_across_grid_values(self):
        spec = small_spec(reallocation_periods=(900.0, 3600.0, 14_400.0))
        units = spec.units()
        assert len(spec.configs()) == 3
        assert sum(1 for unit in units if unit.is_baseline) == 1

    def test_cells_carry_axis_coordinates(self):
        spec = small_spec(reallocation_thresholds=(0.0, 60.0))
        for config, coords in spec.cells():
            assert coords["scenario"] == config.scenario
            assert coords["reallocation_threshold"] == config.reallocation_threshold
            assert coords["platform"] == "homogeneous"

    def test_varying_axes_only_lists_grids(self):
        spec = small_spec(reallocation_periods=(900.0, 3600.0))
        assert set(spec.varying_axes()) == {"reallocation_period"}


class TestValidation:
    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="at least one value"):
            small_spec(heuristics=())

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ValueError, match="duplicate"):
            small_spec(reallocation_periods=(3600.0, 3600.0))

    def test_rejects_unknown_axis_value(self):
        with pytest.raises(ValueError, match="unknown"):
            small_spec(heuristics=("nope",))
        with pytest.raises(ValueError, match="unknown"):
            small_spec(mapping_policies=("nope",))

    def test_rejects_bad_trace_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            small_spec(trace_fractions=(0.0,))
        with pytest.raises(ValueError, match="fraction"):
            small_spec(trace_fractions=(1.5,))

    def test_rejects_baseline_algorithm_axis(self):
        with pytest.raises(ValueError):
            small_spec(algorithms=(None,))

    def test_mapping_policy_names_match_the_enum(self):
        # config.MAPPING_POLICY_NAMES mirrors the MappingPolicy enum to
        # avoid a circular import; keep the two in sync.
        assert set(MAPPING_POLICY_NAMES) == {policy.value for policy in MappingPolicy}

    def test_experiment_config_rejects_unknown_mapping_policy(self):
        with pytest.raises(ValueError, match="mapping policy"):
            ExperimentConfig(scenario="jan", mapping_policy="nope")


class TestRegistry:
    def test_names_are_sorted_and_resolve(self):
        assert list(SWEEP_NAMES) == sorted(SWEEP_NAMES)
        for name in SWEEP_NAMES:
            spec = get_sweep(name)
            assert spec.name == name
            assert spec.configs()

    def test_get_sweep_rescales_target_jobs(self):
        spec = get_sweep("threshold-grid", target_jobs=40)
        assert spec.target_jobs == 40
        assert all(c.scale == bench_scale(c.scenario, 40) for c in spec.configs())

    def test_get_sweep_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            get_sweep("nope")

    def test_registry_grids_vary_their_advertised_axis(self):
        assert "reallocation_period" in SWEEP_REGISTRY["period-grid"].varying_axes()
        assert "reallocation_threshold" in SWEEP_REGISTRY["threshold-grid"].varying_axes()
        assert "mapping_policy" in SWEEP_REGISTRY["mapping-grid"].varying_axes()
        assert "trace_fraction" in SWEEP_REGISTRY["trace-fraction-grid"].varying_axes()


class TestPaperEquivalence:
    def test_sweep_config_expansion_unchanged(self):
        """SweepConfig.configs() must reproduce the historical ad-hoc list."""
        sweep = SweepConfig(algorithm="standard", heterogeneous=True, target_jobs=60)
        expected = []
        for scenario in sweep.scenarios:
            scale = bench_scale(scenario, 60)
            for policy in BATCH_POLICIES:
                for heuristic in HEURISTIC_NAMES:
                    expected.append(
                        ExperimentConfig(
                            scenario=scenario,
                            heterogeneous=True,
                            batch_policy=policy,
                            algorithm="standard",
                            heuristic=heuristic,
                            scale=scale,
                        )
                    )
        assert sweep.configs() == expected

    def test_paper_sweep_matches_sweep_config(self):
        spec = paper_sweep("cancellation", False, target_jobs=60)
        sweep = SweepConfig(algorithm="cancellation", heterogeneous=False, target_jobs=60)
        assert spec.configs() == sweep.configs()

    def test_campaign_configs_membership_via_sweeps(self):
        units = campaign_configs("standard-homogeneous", target_jobs=60)
        assert units == plan_units(paper_sweep("standard", False, 60).configs())


class TestOutageAxis:
    def test_outage_axis_expands_and_coords_read_naturally(self):
        spec = small_spec(outages=(None, "maintenance"))
        cells = spec.cells()
        assert len(cells) == 2
        assert [config.outage_script for config, _ in cells] == [None, "maintenance"]
        assert [coords["outage"] for _, coords in cells] == ["static", "maintenance"]
        assert spec.varying_axes()["outage"] == ("static", "maintenance")

    def test_outage_axis_rejects_unknown_scripts_and_duplicates(self):
        with pytest.raises(ValueError):
            small_spec(outages=("nope",))
        with pytest.raises(ValueError):
            small_spec(outages=("flaky", "flaky"))

    def test_dynamic_baselines_keep_the_script_and_dedup_per_script(self):
        spec = small_spec(outages=("maintenance", "flaky"), heuristics=("mct", "minmin"))
        units = plan_units(spec.configs())
        baselines = [u for u in units if u.is_baseline]
        # One baseline per outage script (shared by both heuristics).
        assert len(baselines) == 2
        assert {b.outage_script for b in baselines} == {"maintenance", "flaky"}

    def test_outage_grid_is_registered(self):
        spec = SWEEP_REGISTRY["outage-grid"]
        assert "outage" in spec.varying_axes()
        assert len(spec.configs()) == 7 * 2 * 4  # scenarios x policies x scripts
        assert all(config.is_dynamic for config in spec.configs())

    def test_default_sweeps_stay_static(self):
        for name in SWEEP_NAMES:
            if name == "outage-grid":
                continue
            assert all(
                config.outage_script is None
                for config in SWEEP_REGISTRY[name].configs()
            )
