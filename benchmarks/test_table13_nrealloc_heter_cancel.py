"""Benchmark: regenerate Table 13 of the paper.

Table 13 reports the number of reallocations for Algorithm 2 (with cancellation),
on heterogeneous platforms: one row per (local batch policy, heuristic), one
column per workload scenario.
"""

from benchmarks.conftest import run_table_bench


def test_table13_nrealloc_heter_cancel(benchmark, sweeps):
    run_table_bench(
        benchmark,
        sweeps,
        metric="reallocations",
        algorithm="cancellation",
        heterogeneous=True,
        expected_number=13,
    )
