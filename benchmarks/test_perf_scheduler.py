"""Scheduler microbenchmark: incremental engine vs from-scratch replanning.

Drives the same event script — fill a 64-processor cluster, build a deep
waiting queue, then a reallocation-style churn of cancels, resubmissions
and completion-estimate storms — through two planning engines:

* **reference** — the historical behaviour: every event invalidates the
  plan and the whole waiting queue is replanned from a freshly built
  availability profile (``plan_fcfs_reference`` / ``plan_cbf_reference``);
* **incremental** — the :class:`~repro.batch.policies.IncrementalPlanner`
  used by the batch server since the event-driven refactor: suffix-only
  replanning over a live residual profile.

Both engines must produce *identical* final plans; the benchmark then
asserts the incremental engine is at least ``MIN_SPEEDUP``× faster at
queue depth ≥ 200 and publishes the timings as ``BENCH_scheduler.json``
at the repository root (uploaded as a CI artifact).
"""

from __future__ import annotations

import math
import random
from pathlib import Path

from perfutil import best_of, speedup as wall_speedup

from repro.analysis.benchio import dump_bench_report
from repro.batch.cluster import ClusterState
from repro.batch.job import Job
from repro.batch.policies import (
    BatchPolicy,
    IncrementalPlanner,
    plan_cbf_reference,
    plan_fcfs_reference,
)

#: Waiting jobs in the benchmark queue (the acceptance floor is depth 200).
QUEUE_DEPTH = 220
#: Cancel + resubmit churn operations (the reallocation access pattern).
CHURN_EVENTS = 100
#: Foreign-job completion estimates per churn operation (ECT storms).
ESTIMATES_PER_EVENT = 3
#: Required reference/incremental wall-clock ratio.
MIN_SPEEDUP = 3.0

TOTAL_PROCS = 64
BENCH_SEED = 20100326

_REFERENCE_PLANNERS = {
    BatchPolicy.FCFS: plan_fcfs_reference,
    BatchPolicy.CBF: plan_cbf_reference,
}


def bench_workload():
    """Deterministic job population and churn script shared by both engines."""
    rng = random.Random(BENCH_SEED)
    blockers = [
        Job(job_id=1000 + i, submit_time=0.0, procs=8, runtime=90000.0, walltime=100000.0)
        for i in range(TOTAL_PROCS // 8)
    ]
    waiting = [
        Job(
            job_id=i,
            submit_time=0.0,
            procs=rng.randint(1, 32),
            runtime=float(rng.randint(100, 4000)),
            walltime=float(rng.randint(500, 5000)),
        )
        for i in range(QUEUE_DEPTH)
    ]
    churn = [rng.randrange(QUEUE_DEPTH) for _ in range(CHURN_EVENTS)]
    probes = [
        Job(job_id=5000 + i, submit_time=0.0, procs=rng.randint(1, 16),
            runtime=500.0, walltime=float(rng.randint(500, 3000)))
        for i in range(8)
    ]
    return blockers, waiting, churn, probes


def make_cluster(blockers):
    # Pinned to the list engine: this benchmark isolates incremental
    # (suffix-only) replanning against from-scratch replanning on the same
    # profile implementation.  The array-vs-list engine comparison has its
    # own benchmark (test_perf_profile.py) at the depths where it matters.
    cluster = ClusterState("bench", TOTAL_PROCS, 1.0, profile_engine="list")
    for job in blockers:
        cluster.start_job(job, start_time=0.0)
    return cluster


def run_reference(policy, blockers, waiting, churn, probes):
    """Every event: rebuild the profile and replan the whole queue."""
    plan_fn = _REFERENCE_PLANNERS[policy]
    cluster = make_cluster(blockers)
    queue = []

    def replan():
        profile = cluster.build_profile(0.0)
        plan = plan_fn(profile, queue, 1.0, 0.0, "bench")
        last_start = 0.0
        for entry in plan:
            if math.isfinite(entry.planned_start):
                last_start = max(last_start, entry.planned_start)
        return plan, profile, last_start

    def estimate(residual, last_start, probe):
        earliest = last_start if policy is BatchPolicy.FCFS else 0.0
        start = residual.earliest_slot(probe.procs, probe.walltime, earliest)
        return start + probe.walltime if math.isfinite(start) else math.inf

    for job in waiting:
        queue.append(job)
        plan, residual, last_start = replan()
    for step, position in enumerate(churn):
        victim = queue.pop(position % len(queue))
        plan, residual, last_start = replan()
        queue.append(victim)
        plan, residual, last_start = replan()
        for probe in probes[: ESTIMATES_PER_EVENT]:
            estimate(residual, last_start, probe)
    return replan()[0]


def run_incremental(policy, blockers, waiting, churn, probes):
    """The same event script through the suffix-replanning engine."""
    cluster = make_cluster(blockers)
    planner = IncrementalPlanner(policy, cluster)

    def estimate(probe):
        earliest = planner.frontier() if policy is BatchPolicy.FCFS else 0.0
        start = planner.residual.earliest_slot(probe.procs, probe.walltime, earliest)
        return start + probe.walltime if math.isfinite(start) else math.inf

    for job in waiting:
        planner.submit(job, 0.0)
    for position in churn:
        index = position % len(planner.jobs)
        victim = planner.jobs[index]
        planner.cancel(index, 0.0)
        planner.submit(victim, 0.0)
        for probe in probes[: ESTIMATES_PER_EVENT]:
            estimate(probe)
    return planner.cluster_plan()


def plans_identical(left, right):
    if len(left) != len(right):
        return False
    for entry in left:
        other = right.get(entry.job_id)
        if other is None:
            return False
        if (entry.planned_start, entry.planned_end, entry.procs) != (
            other.planned_start,
            other.planned_end,
            other.procs,
        ):
            return False
    return True


def test_incremental_scheduler_speedup():
    blockers, waiting, churn, probes = bench_workload()
    report = {
        "queue_depth": QUEUE_DEPTH,
        "churn_events": CHURN_EVENTS,
        "estimates_per_event": ESTIMATES_PER_EVENT,
        "total_procs": TOTAL_PROCS,
        "min_speedup": MIN_SPEEDUP,
        "policies": {},
    }
    for policy in (BatchPolicy.FCFS, BatchPolicy.CBF):
        # Best-of-two timings per engine keep the speedup assertion robust
        # against noisy shared CI runners.
        reference_s, reference_plan = best_of(
            2, run_reference, policy, blockers, waiting, churn, probes
        )
        incremental_s, incremental_plan = best_of(
            2, run_incremental, policy, blockers, waiting, churn, probes
        )

        assert plans_identical(reference_plan, incremental_plan), (
            f"{policy}: incremental plan diverged from the reference plan"
        )
        speedup = wall_speedup(reference_s, incremental_s)
        report["policies"][policy.value] = {
            "reference_s": round(reference_s, 4),
            "incremental_s": round(incremental_s, 4),
            "speedup": round(speedup, 2),
        }
        print(
            f"\n{policy}: reference {reference_s:.3f}s, incremental "
            f"{incremental_s:.3f}s, speedup {speedup:.1f}x"
        )

    out_path = Path(__file__).resolve().parents[1] / "BENCH_scheduler.json"
    dump_bench_report(out_path, report)

    for policy_name, numbers in report["policies"].items():
        assert numbers["speedup"] >= MIN_SPEEDUP, (
            f"{policy_name}: speedup {numbers['speedup']}x below the "
            f"{MIN_SPEEDUP}x acceptance floor"
        )
