"""Differential oracle for dynamic capacity: live state vs from-scratch rebuild.

Extends the incremental-planning oracle (``test_incremental_planning``) to
resource events: randomized sequences of submissions, time advances and
capacity changes (grow, shrink, full outage — each possibly killing and
requeueing running jobs) are driven through a :class:`BatchServer`, and
after *every* event the live state must equal the from-scratch reference
float for float:

* the cluster's live availability profile equals
  :meth:`ClusterState.build_profile` (which rebuilds from the running set
  at the *current* capacity);
* the incremental plan equals ``plan_fcfs_reference`` /
  ``plan_cbf_reference`` over that rebuilt profile;
* FCFS frontier and foreign-job estimates follow the reference formulas.

Both policies are exercised, as required by the acceptance criteria.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.job import Job
from repro.sim.kernel import SimulationKernel
from tests.conftest import make_server
from tests.test_incremental_planning import PROBES, assert_matches_reference

TOTAL_PROCS = 8

# One event of the randomized script:
#   ("submit", procs, runtime, walltime_factor)
#   ("advance", dt)          -- run the kernel forward (starts/completions fire)
#   ("capacity", new_value)  -- resource event at the current time
event = st.one_of(
    st.tuples(
        st.just("submit"),
        st.integers(1, TOTAL_PROCS),
        st.floats(1.0, 500.0),
        st.floats(1.0, 3.0),
    ),
    st.tuples(st.just("advance"), st.floats(1.0, 400.0)),
    st.tuples(st.just("capacity"), st.integers(0, TOTAL_PROCS)),
)


class TestCapacityDifferentialOracle:
    @given(
        st.lists(event, min_size=1, max_size=25),
        st.sampled_from(["fcfs", "cbf"]),
        st.sampled_from([1.0, 1.5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_change_sequences_match_reference(self, events, policy, speed):
        kernel = SimulationKernel()
        server = make_server(kernel, procs=TOTAL_PROCS, speed=speed, policy=policy)
        next_id = 0
        for op in events:
            if op[0] == "submit":
                _, procs, runtime, factor = op
                job = Job(
                    job_id=next_id,
                    submit_time=kernel.now,
                    procs=procs,
                    runtime=runtime,
                    walltime=max(1.0, runtime * factor),
                )
                next_id += 1
                server.submit(job)
            elif op[0] == "advance":
                kernel.run(until=kernel.now + op[1])
            else:
                server.apply_capacity_change(op[1])
            assert_matches_reference(server, PROBES)

        # Books balance at the end of every script: nothing was lost.
        recovered = server.outage_killed_count
        assert server.requeued_count == recovered
        assert server.started_count >= server.completed_count
        if recovered:
            assert server.work_lost >= 0.0

    @given(st.lists(event, min_size=1, max_size=25), st.sampled_from(["fcfs", "cbf"]))
    @settings(max_examples=30, deadline=None)
    def test_scripts_drain_after_full_recovery(self, events, policy):
        """After restoring full capacity, every submitted job completes."""
        kernel = SimulationKernel()
        server = make_server(kernel, procs=TOTAL_PROCS, policy=policy)
        jobs = []
        next_id = 0
        for op in events:
            if op[0] == "submit":
                _, procs, runtime, factor = op
                job = Job(
                    job_id=next_id,
                    submit_time=kernel.now,
                    procs=procs,
                    runtime=runtime,
                    walltime=max(1.0, runtime * factor),
                )
                next_id += 1
                jobs.append(job)
                server.submit(job)
            elif op[0] == "advance":
                kernel.run(until=kernel.now + op[1])
            else:
                server.apply_capacity_change(op[1])
        server.apply_capacity_change(TOTAL_PROCS)
        assert_matches_reference(server, PROBES)
        kernel.run()
        assert server.completed_count == len(jobs)
        assert server.queue_length == 0
        assert_matches_reference(server, PROBES)
