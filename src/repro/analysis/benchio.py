"""Canonical serialization of benchmark reports.

The ``benchmarks/test_perf_*`` suites publish their timings as
``BENCH_*.json`` files at the repository root (committed and uploaded as
CI artifacts).  Historically each suite called ``json.dumps`` on a
hand-built dict, which made reruns churn the files in ways that had
nothing to do with the measurements: insertion-ordered keys moved around
as the code evolved, and raw ``time.perf_counter`` arithmetic leaked
15-digit floats that differed in every run even when the rounded timing
was identical.

:func:`dump_bench_report` pins the representation down:

* **keys are sorted** at every nesting level, so the line order of the
  file is a pure function of the key set;
* **floats are rounded to a fixed precision** (4 decimals — a tenth of a
  millisecond, well below timer noise) recursively, bools excluded;
* the document ends with a single trailing newline.

A rerun therefore only diffs where a rounded measurement genuinely
changed, never in formatting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Decimal places every float of a bench report is rounded to.
FLOAT_PRECISION = 4


def canonical_report(value: Any, precision: int = FLOAT_PRECISION) -> Any:
    """Recursively round floats and reject types JSON cannot express."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return round(value, precision)
    if isinstance(value, dict):
        return {str(key): canonical_report(item, precision) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_report(item, precision) for item in value]
    raise TypeError(f"bench reports only hold JSON scalars and containers, got {type(value)!r}")


def dumps_bench_report(report: Any, precision: int = FLOAT_PRECISION) -> str:
    """Deterministic JSON text of a bench report (sorted keys, fixed floats)."""
    return (
        json.dumps(
            canonical_report(report, precision),
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )
        + "\n"
    )


def dump_bench_report(path: "Path | str", report: Any, precision: int = FLOAT_PRECISION) -> None:
    """Write ``report`` to ``path`` in the canonical form.

    The file is only touched when its content actually changes, so a
    rerun with identical (rounded) measurements leaves the mtime — and
    any ``git status`` — alone.
    """
    path = Path(path)
    text = dumps_bench_report(report, precision)
    if path.exists() and path.read_text(encoding="utf-8") == text:
        return
    path.write_text(text, encoding="utf-8")
