"""Recording of fired simulation events.

The :class:`EventTrace` is an optional observer attached to the kernel.  It
keeps a compact record of every event that fired, which the experiment
harness uses to debug schedules and to reconstruct Gantt-chart style
figures (Figures 1 and 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.sim.events import Event, EventType


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One fired event: time, type and the callback's qualified name."""

    time: float
    event_type: EventType
    callback_name: str


class EventTrace:
    """In-memory list of :class:`TraceRecord` entries.

    Parameters
    ----------
    max_records:
        Optional cap on the number of stored records.  Once the cap is hit
        the oldest records are *not* evicted; recording simply stops.  This
        keeps long simulations bounded in memory while preserving the
        beginning of the run, which is what the figures need.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        self._records: list[TraceRecord] = []
        self._max_records = max_records
        #: Number of events that were observed but not stored due to the cap.
        self.dropped = 0

    def record(self, event: Event) -> None:
        """Store a record for ``event`` (called by the kernel)."""
        if self._max_records is not None and len(self._records) >= self._max_records:
            self.dropped += 1
            return
        name = getattr(event.callback, "__qualname__", None) or getattr(
            event.callback, "__name__", repr(event.callback)
        )
        self._records.append(TraceRecord(event.time, event.event_type, name))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def by_type(self, event_type: EventType) -> list[TraceRecord]:
        """Return all stored records of the given type."""
        return [r for r in self._records if r.event_type == event_type]

    def clear(self) -> None:
        """Drop all stored records."""
        self._records.clear()
        self.dropped = 0
