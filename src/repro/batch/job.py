"""Parallel rigid jobs.

A job in the paper's model is *rigid*: it requests a fixed number of
processors and a walltime.  The walltime is what the user declared (and is
usually over-estimated); the actual runtime is only discovered when the job
completes.  When the walltime is reached a still-running job is killed, so
the *effective* runtime on a cluster is ``min(runtime, walltime)`` scaled
by the cluster speed.

Runtimes and walltimes are expressed relative to a reference speed of 1.0
(the slowest cluster of the platform).  On a cluster with speed factor
``s`` both are divided by ``s``: this is the "automatic adjustment of the
walltime to the speed of the cluster" optimisation described in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class JobState(enum.Enum):
    """Lifecycle of a job inside the grid simulation."""

    PENDING = "pending"  #: created from the trace, not yet submitted
    WAITING = "waiting"  #: submitted to a cluster, waiting in its queue
    RUNNING = "running"  #: started on a cluster
    COMPLETED = "completed"  #: finished (normally or killed at walltime)
    CANCELLED = "cancelled"  #: cancelled and not yet resubmitted
    REJECTED = "rejected"  #: does not fit on any cluster of the platform


@dataclass(slots=True)
class Job:
    """One parallel rigid job.

    Parameters
    ----------
    job_id:
        Unique identifier within a scenario.
    submit_time:
        Time (seconds from the start of the trace) at which the client
        submits the job to the grid middleware.
    procs:
        Number of processors requested; fixed for the job's lifetime.
    runtime:
        Actual execution time on a reference-speed (1.0) cluster.
    walltime:
        User-requested walltime on a reference-speed cluster; the job is
        killed if it runs longer than this (scaled by cluster speed).
    origin_site:
        Optional name of the site the job was originally submitted to in
        the source trace (informational only; the meta-scheduler re-maps
        every job).
    """

    job_id: int
    submit_time: float
    procs: int
    runtime: float
    walltime: float
    origin_site: Optional[str] = None

    # -- dynamic state ------------------------------------------------- #
    state: JobState = field(default=JobState.PENDING)
    cluster: Optional[str] = field(default=None)
    #: time at which the job was (re)submitted to its current cluster
    local_submit_time: Optional[float] = field(default=None)
    start_time: Optional[float] = field(default=None)
    completion_time: Optional[float] = field(default=None)
    #: True if the job exceeded its walltime and was killed
    killed: bool = field(default=False)
    #: number of times the job was moved to a *different* cluster
    reallocation_count: int = field(default=0)
    #: number of times the job was killed by a cluster outage and requeued
    outage_kills: int = field(default=0)

    def __post_init__(self) -> None:
        if self.procs <= 0:
            raise ValueError(f"job {self.job_id}: procs must be positive, got {self.procs}")
        if self.runtime < 0:
            raise ValueError(f"job {self.job_id}: runtime must be >= 0, got {self.runtime}")
        if self.walltime <= 0:
            raise ValueError(f"job {self.job_id}: walltime must be > 0, got {self.walltime}")
        if self.submit_time < 0:
            raise ValueError(
                f"job {self.job_id}: submit_time must be >= 0, got {self.submit_time}"
            )

    # ------------------------------------------------------------------ #
    # Speed scaling                                                      #
    # ------------------------------------------------------------------ #
    def walltime_on(self, speed: float) -> float:
        """Walltime requested on a cluster with the given speed factor."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.walltime / speed

    def runtime_on(self, speed: float) -> float:
        """Actual runtime on a cluster with the given speed factor."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.runtime / speed

    def effective_runtime_on(self, speed: float) -> float:
        """Wall-clock time the job occupies processors on the cluster.

        This is the actual runtime capped at the walltime (the local
        resource manager kills jobs that exceed their walltime).
        """
        return min(self.runtime_on(speed), self.walltime_on(speed))

    def exceeds_walltime(self) -> bool:
        """True if the job would be killed at its walltime."""
        return self.runtime > self.walltime

    # ------------------------------------------------------------------ #
    # Derived metrics                                                    #
    # ------------------------------------------------------------------ #
    @property
    def response_time(self) -> Optional[float]:
        """Completion minus grid submission time (``None`` until finished)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    @property
    def wait_time(self) -> Optional[float]:
        """Start minus grid submission time (``None`` until started)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def reset_dynamic_state(self) -> None:
        """Return the job to its pristine PENDING state.

        Used by the experiment runner so the same trace objects can be
        replayed for the baseline and for every reallocation configuration.
        """
        self.state = JobState.PENDING
        self.cluster = None
        self.local_submit_time = None
        self.start_time = None
        self.completion_time = None
        self.killed = False
        self.reallocation_count = 0
        self.outage_kills = 0

    def copy(self) -> "Job":
        """Deep-enough copy with pristine dynamic state."""
        return Job(
            job_id=self.job_id,
            submit_time=self.submit_time,
            procs=self.procs,
            runtime=self.runtime,
            walltime=self.walltime,
            origin_site=self.origin_site,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, t={self.submit_time:.0f}, p={self.procs}, "
            f"rt={self.runtime:.0f}, wt={self.walltime:.0f}, state={self.state.value})"
        )
