"""Availability timelines: cluster capacity as a function of time.

The paper evaluates reallocation on a *static* grid: every cluster owns a
fixed number of processors for the whole experiment.  Real platforms are
not static — clusters go down for maintenance, lose nodes to failures,
join the grid mid-way or leave it early.  An :class:`AvailabilityTimeline`
is the declarative description of that dynamism for one cluster: a set of
non-overlapping :class:`CapacityInterval` windows during which the
cluster's available capacity differs from its nominal processor count.

Outside every interval the cluster runs at full capacity, so the *empty*
timeline is the identity: a :class:`~repro.platform.spec.PlatformSpec`
whose clusters carry no (or only trivial) timelines compiles to exactly
the historical static behaviour — no resource events are scheduled and no
simulation outcome changes.

Timelines are pure data.  The simulation side lives in
:class:`~repro.batch.server.BatchServer` (which schedules one
``RESOURCE_CHANGE`` kernel event per capacity transition) and
:class:`~repro.batch.cluster.ClusterState` (which grows or shrinks its
live availability profile, killing running jobs that no longer fit).
Stochastic timeline generation (seeded failure models, named outage
scripts) lives in :mod:`repro.workload.failures`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Interval kinds understood by the declarative constructors.  The kind is
#: informational (it names *why* capacity changed); only the capacity value
#: affects the simulation.
INTERVAL_KINDS: Tuple[str, ...] = ("outage", "maintenance", "degraded", "join", "leave")


class TimelineError(ValueError):
    """Raised on invalid timeline declarations (overlaps, bad capacities)."""


@dataclass(frozen=True, slots=True)
class CapacityInterval:
    """One window during which a cluster's available capacity is reduced.

    Parameters
    ----------
    start / end:
        Half-open window ``[start, end)`` in simulated seconds; ``end``
        may be ``math.inf`` (the cluster never comes back).
    capacity:
        Absolute number of processors available during the window.  0
        models a full outage; a value between 0 and the nominal size
        models degraded capacity.
    kind:
        Informational tag (``outage``, ``maintenance``, ``degraded``,
        ``join``, ``leave``).
    """

    start: float
    end: float
    capacity: int
    kind: str = "outage"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise TimelineError(f"interval start must be >= 0, got {self.start}")
        if not self.end > self.start:
            raise TimelineError(f"empty capacity interval [{self.start}, {self.end})")
        if self.capacity < 0:
            raise TimelineError(f"interval capacity must be >= 0, got {self.capacity}")
        if self.kind not in INTERVAL_KINDS:
            raise TimelineError(
                f"unknown interval kind {self.kind!r}; expected one of {INTERVAL_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (``inf`` encoded as ``None``)."""
        return {
            "start": self.start,
            "end": None if math.isinf(self.end) else self.end,
            "capacity": self.capacity,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CapacityInterval":
        """Inverse of :meth:`to_dict`."""
        end = data["end"]
        return cls(
            start=float(data["start"]),
            end=math.inf if end is None else float(end),
            capacity=int(data["capacity"]),
            kind=data.get("kind", "outage"),
        )


@dataclass(frozen=True, slots=True)
class AvailabilityTimeline:
    """Piecewise-constant capacity description of one cluster.

    The timeline holds the *exceptional* windows only; between (and after)
    them the cluster runs at its nominal capacity.  Intervals must not
    overlap — the compiled capacity function would otherwise be ambiguous.
    """

    intervals: Tuple[CapacityInterval, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.intervals, key=lambda iv: (iv.start, iv.end)))
        object.__setattr__(self, "intervals", ordered)
        for previous, current in zip(ordered, ordered[1:]):
            if current.start < previous.end:
                raise TimelineError(
                    f"overlapping capacity intervals "
                    f"[{previous.start}, {previous.end}) and "
                    f"[{current.start}, {current.end})"
                )

    # ------------------------------------------------------------------ #
    # Declarative constructors                                           #
    # ------------------------------------------------------------------ #
    @classmethod
    def always_up(cls) -> "AvailabilityTimeline":
        """The trivial (identity) timeline: full capacity forever."""
        return cls()

    def with_outage(self, start: float, end: float, kind: str = "outage") -> "AvailabilityTimeline":
        """Copy with a full outage (capacity 0) over ``[start, end)``."""
        return AvailabilityTimeline(
            self.intervals + (CapacityInterval(start, end, 0, kind),)
        )

    def with_maintenance(self, start: float, end: float) -> "AvailabilityTimeline":
        """Copy with a maintenance window (capacity 0, tagged as such)."""
        return self.with_outage(start, end, kind="maintenance")

    def with_degraded(self, start: float, end: float, capacity: int) -> "AvailabilityTimeline":
        """Copy with reduced capacity over ``[start, end)``."""
        return AvailabilityTimeline(
            self.intervals + (CapacityInterval(start, end, capacity, "degraded"),)
        )

    def joining_at(self, time: float) -> "AvailabilityTimeline":
        """Copy where the cluster only joins the platform at ``time``."""
        if time <= 0:
            return self
        return AvailabilityTimeline(
            self.intervals + (CapacityInterval(0.0, time, 0, "join"),)
        )

    def leaving_at(self, time: float) -> "AvailabilityTimeline":
        """Copy where the cluster leaves the platform for good at ``time``.

        The window never ends, so jobs killed at the leave (requeued on
        the cluster's own queue) only complete if a reallocation agent
        moves them — on a baseline run they stay waiting forever.  Outage
        scripts that feed metric comparisons should bound the window at
        the trace horizon instead (see the ``join-leave`` script).
        """
        return AvailabilityTimeline(
            self.intervals + (CapacityInterval(time, math.inf, 0, "leave"),)
        )

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    @property
    def is_trivial(self) -> bool:
        """True when the timeline holds no intervals at all.

        This is a structural check: a timeline whose intervals happen to
        preserve the full capacity (e.g. a "degradation" to the nominal
        size) is not trivial by this test, even though it schedules no
        transitions.
        """
        return not self.intervals

    def validate_for(self, procs: int, cluster: str = "") -> None:
        """Check every interval capacity against the nominal size ``procs``."""
        for interval in self.intervals:
            if interval.capacity > procs:
                raise TimelineError(
                    f"cluster {cluster or '?'}: interval capacity "
                    f"{interval.capacity} exceeds the nominal size {procs}"
                )

    def capacity_at(self, time: float, procs: int) -> int:
        """Available capacity at ``time`` for a cluster of nominal size ``procs``."""
        for interval in self.intervals:
            if interval.start <= time < interval.end:
                return min(interval.capacity, procs)
        return procs

    def transitions(self, procs: int) -> List[Tuple[float, int]]:
        """Capacity change points as ``(time, new capacity)``, time-ordered.

        The initial capacity (at time 0) is *not* a transition; read it
        with :meth:`capacity_at`.  Infinite interval ends produce no
        recovery transition.  Consecutive equal capacities are coalesced,
        so the trivial timeline — and any timeline whose intervals do not
        actually change the capacity — yields an empty list.
        """
        points: List[Tuple[float, int]] = []
        for interval in self.intervals:
            if interval.start > 0.0:
                points.append((interval.start, min(interval.capacity, procs)))
            if math.isfinite(interval.end):
                points.append((interval.end, self.capacity_at(interval.end, procs)))
        points.sort(key=lambda item: item[0])
        coalesced: List[Tuple[float, int]] = []
        previous = self.capacity_at(0.0, procs)
        for time, capacity in points:
            if capacity != previous:
                coalesced.append((time, capacity))
                previous = capacity
        return coalesced

    # ------------------------------------------------------------------ #
    # Serialization                                                      #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation."""
        return {"intervals": [interval.to_dict() for interval in self.intervals]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AvailabilityTimeline":
        """Inverse of :meth:`to_dict`."""
        return cls(
            intervals=tuple(
                CapacityInterval.from_dict(raw) for raw in data.get("intervals", ())
            )
        )

    @classmethod
    def from_intervals(
        cls, intervals: Sequence[Tuple[float, float, int]], kind: str = "outage"
    ) -> "AvailabilityTimeline":
        """Build from raw ``(start, end, capacity)`` triples."""
        return cls(
            tuple(CapacityInterval(start, end, capacity, kind) for start, end, capacity in intervals)
        )

    def __bool__(self) -> bool:
        return not self.is_trivial
