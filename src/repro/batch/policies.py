"""Local scheduling policies: FCFS and Conservative Back-Filling.

Both policies are *conservative*: every waiting job gets a reservation and
a later-queued job is never allowed to delay the reservation of an
earlier-queued job.  The difference is where the reservation may be placed:

* **FCFS** — "the earliest slot at the end of the job queue": jobs keep
  strict queue order, so a job may not start before the job ahead of it in
  the queue starts.  This is the default policy of PBS, Sun Grid Engine and
  Maui as cited in the paper.
* **CBF** — conservative back-filling: a job may slide into an earlier hole
  of the availability profile as long as the already-placed reservations
  (i.e. the earlier-queued jobs) are untouched.  Available in Maui,
  LoadLeveler and OAR.

Planning comes in two equivalent flavours:

* the *reference* planners :func:`plan_fcfs` / :func:`plan_cbf` (also
  exported as :data:`plan_fcfs_reference` / :data:`plan_cbf_reference`) —
  pure functions from ``(profile, queue, speed, now)`` to a
  :class:`~repro.batch.schedule.ClusterPlan`, rebuilding the whole plan;
* the :class:`IncrementalPlanner` — the event-driven engine used by the
  :class:`~repro.batch.server.BatchServer`, which maintains the *same*
  plan across submit/cancel/start/completion events by editing only the
  affected queue suffix.  The differential property suite asserts the two
  flavours agree on randomized event sequences.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Iterable, List, Protocol, Sequence

from repro.batch.cluster import ClusterState
from repro.batch.job import Job
from repro.batch.profile import AvailabilityProfile
from repro.batch.schedule import ClusterPlan, IncrementalPlan, PlannedJob


class BatchPolicy(enum.Enum):
    """Identifier of a local scheduling policy."""

    FCFS = "fcfs"
    CBF = "cbf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


def resolve_profile_engine(engine: str, policy: BatchPolicy) -> str:
    """Concrete availability-profile engine for ``policy``.

    Resolves the ``"auto"`` default: FCFS gets the ``list`` engine —
    its placements are tail appends, where the per-call overhead of the
    NumPy primitives loses to plain Python lists (the regression the
    profile benchmark gates) — every other policy gets ``array``.
    Explicit engine names pass through untouched, so the
    ``--profile-engine`` escape hatch still forces either engine
    end-to-end.  The two engines are float-identical (the differential
    suite holds them to exact equality), so auto-selection never moves a
    table by a bit.
    """
    if engine != "auto":
        return engine
    return "list" if policy is BatchPolicy.FCFS else "array"


class PlanningPolicy(Protocol):
    """Signature of a planning function."""

    def __call__(
        self,
        profile: AvailabilityProfile,
        queue: Sequence[Job],
        speed: float,
        now: float,
        cluster_name: str = "",
    ) -> ClusterPlan:  # pragma: no cover - protocol definition
        ...


def _plan(
    profile: AvailabilityProfile,
    queue: Sequence[Job],
    speed: float,
    now: float,
    cluster_name: str,
    keep_queue_order: bool,
) -> ClusterPlan:
    """Shared planning loop for FCFS and CBF.

    Jobs are placed one by one in queue order.  ``keep_queue_order`` adds
    the FCFS constraint that a job may not start before the previous job in
    the queue.
    """
    plan = ClusterPlan(cluster_name, computed_at=now)
    previous_start = now
    for job in queue:
        duration = job.walltime_on(speed)
        earliest = previous_start if keep_queue_order else now
        start = profile.earliest_slot(job.procs, duration, earliest)
        if math.isfinite(start):
            profile.subtract(start, start + duration, job.procs)
            end = start + duration
        else:
            end = math.inf
        plan.add(PlannedJob(job.job_id, job.procs, start, end))
        if keep_queue_order and math.isfinite(start):
            previous_start = start
    return plan


def plan_fcfs(
    profile: AvailabilityProfile,
    queue: Sequence[Job],
    speed: float,
    now: float,
    cluster_name: str = "",
) -> ClusterPlan:
    """First-come-first-served conservative planning.

    The reservation of each job is the earliest slot that is not before the
    reservation of the previous job in the queue, so jobs start in queue
    order (ties resolved by processor availability).
    """
    return _plan(profile, queue, speed, now, cluster_name, keep_queue_order=True)


def plan_cbf(
    profile: AvailabilityProfile,
    queue: Sequence[Job],
    speed: float,
    now: float,
    cluster_name: str = "",
) -> ClusterPlan:
    """Conservative back-filling planning.

    Each job is placed at the earliest slot available in the profile after
    the reservations of all earlier-queued jobs have been subtracted; it may
    therefore start before an earlier-queued job (back-filling), but it can
    never delay one (conservative).
    """
    return _plan(profile, queue, speed, now, cluster_name, keep_queue_order=False)


#: From-scratch planners kept under explicit names: they are the oracle the
#: incremental engine is differentially tested against, and the "before"
#: side of the scheduler microbenchmark.
plan_fcfs_reference = plan_fcfs
plan_cbf_reference = plan_cbf


_POLICIES: dict[BatchPolicy, PlanningPolicy] = {
    BatchPolicy.FCFS: plan_fcfs,
    BatchPolicy.CBF: plan_cbf,
}


class IncrementalPlanner:
    """Event-driven planner producing the reference plans at suffix cost.

    One planner serves both policies: FCFS is CBF plus the queue-order
    constraint (``keep_queue_order``), exactly as in :func:`_plan`.  The
    planner owns the waiting queue (``jobs``) and an
    :class:`~repro.batch.schedule.IncrementalPlan` and keeps, between any
    two events, the invariant that its entries are byte-identical to what
    ``plan_fcfs``/``plan_cbf`` would compute from scratch over
    ``(cluster.build_profile(now), jobs, speed, now)``.

    Per-event cost:

    * ``submit`` — one placement at the tail (the residual already ends
      where the reference planner would look);
    * ``cancel`` at queue position ``k`` — restore + re-place positions
      ``k..end`` only;
    * ``job_started`` — free: the started job ran at its planned slot, so
      its reservation simply moves from the plan to the running set;
    * ``job_finished`` at the walltime boundary — free: the availability
      from ``now`` on is unchanged;
    * ``job_finished`` early — the only full replan: processors were
      returned at an unpredicted time, which can improve every placement.
    """

    __slots__ = (
        "policy", "keep_queue_order", "cluster", "speed", "jobs", "waiting_ids",
        "plan", "generation",
    )

    def __init__(self, policy: BatchPolicy, cluster: ClusterState) -> None:
        self.policy = policy
        self.keep_queue_order = policy is BatchPolicy.FCFS
        self.cluster = cluster
        self.speed = cluster.speed
        self.jobs: List[Job] = []
        #: ids of the jobs in :attr:`jobs` — O(1) membership for the
        #: duplicate-submission check on the service admission hot path.
        self.waiting_ids: set = set()
        self.plan = IncrementalPlan(cluster.name, cluster.availability(0.0), 0.0)
        #: bumped whenever the plan or residual profile changes in a way
        #: that can alter an estimate: submissions, cancellations, replans
        #: (early completions, capacity changes).  A job starting exactly at
        #: its planned slot does *not* bump it — the reservation moves from
        #: the plan to the running set with an identical residual, so every
        #: other job's estimate is unchanged.  The reallocation engine's
        #: dirty-cluster invalidation keys off this counter.
        self.generation = 0

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    @property
    def residual(self) -> AvailabilityProfile:
        """Residual profile after every planned reservation (do not mutate)."""
        return self.plan.residual

    def cluster_plan(self) -> ClusterPlan:
        """Current plan of the waiting queue as a :class:`ClusterPlan`."""
        return self.plan.as_cluster_plan()

    def frontier(self) -> float:
        """FCFS frontier: earliest start allowed for a job appended now."""
        return self.plan.frontier()

    def contains(self, job_id: int) -> bool:
        """Whether ``job_id`` is waiting here (O(1))."""
        return job_id in self.waiting_ids

    def index_of(self, job_id: int) -> int:
        """Queue position of ``job_id`` or -1 when it is not waiting here."""
        if job_id not in self.waiting_ids:
            return -1
        for index, job in enumerate(self.jobs):
            if job.job_id == job_id:
                return index
        return -1

    def estimate_many(self, jobs: Sequence[Job]) -> List[float]:
        """Expected completion time of every job in ``jobs``, as pure queries.

        A job already waiting here reports its planned completion; any
        other job is placed *hypothetically* at the end of the queue
        (respecting the FCFS frontier when the policy keeps queue order)
        against the live residual profile, which is never mutated.  On the
        array engine the hypothetical placements go through one
        :meth:`~repro.batch.arrayprofile.ArrayProfile.earliest_slot_many`
        call — the open-run structure of the residual is built once per
        distinct processor count instead of once per job — with results
        float-identical to per-job ``earliest_slot`` queries.
        """
        plan = self.cluster_plan()
        earliest = self.frontier() if self.keep_queue_order else self.plan.now
        residual = self.plan.residual
        speed = self.speed
        cluster = self.cluster
        estimates: List[float] = [math.inf] * len(jobs)
        pending: List[tuple[int, int, float]] = []
        for position, job in enumerate(jobs):
            if not cluster.fits(job):
                continue
            if job.job_id in plan:
                estimates[position] = plan.planned_end(job.job_id)
                continue
            pending.append((position, job.procs, job.walltime_on(speed)))
        if not pending:
            return estimates
        if hasattr(residual, "earliest_slot_many"):
            starts = residual.earliest_slot_many(
                [procs for _, procs, _ in pending],
                [duration for _, _, duration in pending],
                earliest,
            )
        else:
            starts = [
                residual.earliest_slot(procs, duration, earliest)
                for _, procs, duration in pending
            ]
        for (position, _, duration), start in zip(pending, starts):
            if math.isfinite(start):
                estimates[position] = start + duration
        return estimates

    # ------------------------------------------------------------------ #
    # Events                                                             #
    # ------------------------------------------------------------------ #
    def advance(self, now: float) -> None:
        """Move to ``now``; previously planned starts stay valid.

        Between two events nothing changes, and a pure time advance cannot
        shift a reservation: the profile over ``[now, inf)`` is untouched
        and every planned start is at or after ``now`` (jobs planned to
        start earlier were started by the pass at their slot).  The stale
        guard rebuilds from scratch if that invariant is ever violated.
        """
        plan = self.plan
        if now == plan.now:
            return
        stale = any(entry.planned_start < now for entry in plan.entries)
        plan.advance(now)
        if stale:  # pragma: no cover - defensive, violates the invariant
            self.replan_all(now)

    def submit(self, job: Job, now: float) -> None:
        """Append ``job`` to the queue and place it at the tail."""
        self.advance(now)
        self.generation += 1
        self.jobs.append(job)
        self.waiting_ids.add(job.job_id)
        self._extend(len(self.jobs) - 1)

    def cancel(self, index: int, now: float) -> None:
        """Remove the job at queue position ``index``; replan the suffix."""
        self.advance(now)
        self.generation += 1
        self.waiting_ids.discard(self.jobs[index].job_id)
        del self.jobs[index]
        self.plan.restore_suffix(index)
        self._extend(index)

    def job_started(self, job: Job, now: float) -> None:
        """A waiting job started; call *after* ``cluster.start_job``.

        When the job starts exactly at its planned slot (the only way the
        server starts jobs) the residual is already correct.  Any other
        start would break the invariant, so it falls back to a full replan
        against the cluster's live profile, which includes the new running
        reservation either way.
        """
        self.advance(now)
        index = self.index_of(job.job_id)
        if index < 0:  # pragma: no cover - server guarantees membership
            raise ValueError(f"job {job.job_id} is not planned on {self.cluster.name}")
        entry = self.plan.entries[index]
        del self.jobs[index]
        self.waiting_ids.discard(job.job_id)
        if entry.planned_start == now and entry.planned_end == now + job.walltime_on(self.speed):
            self.plan.remove_started(index)
        else:  # pragma: no cover - defensive, violates the invariant
            self.replan_all(now)

    def job_finished(self, now: float, walltime_end: float) -> None:
        """A running job finished; call *after* ``cluster.finish_job``.

        A completion at the walltime boundary changes nothing from ``now``
        on.  An early completion released processors the plan did not know
        about, which is the one event that can improve every waiting job's
        placement — replan the whole queue from the live base profile.
        """
        if walltime_end > now:
            self.replan_all(now)
        else:
            self.advance(now)

    def requeue_front(self, jobs: Sequence[Job], now: float) -> None:
        """Re-enter ``jobs`` at the head of the queue after a capacity change.

        This is the planner half of a resource event: jobs killed by an
        outage re-enter the waiting queue *ahead* of everything queued
        behind them (they had already earned their start), and the whole
        plan is rebuilt from the cluster's post-change availability —
        a capacity change moves the base profile itself, which can shift
        every placement, so the full replan is the only exact suffix.
        """
        if jobs:
            self.jobs[:0] = jobs
            self.waiting_ids.update(job.job_id for job in jobs)
        self.replan_all(now)

    def replan_all(self, now: float) -> None:
        """Rebuild the plan from the cluster's live availability profile."""
        self.generation += 1
        self.plan.reset(self.cluster.availability(now), now)
        self._extend(0)

    def _extend(self, start_index: int) -> None:
        """Place ``jobs[start_index:]`` (entries currently end at ``start_index``)."""
        plan = self.plan
        now = plan.now
        keep_queue_order = self.keep_queue_order
        frontier = plan.frontier() if keep_queue_order else now
        speed = self.speed
        for job in self.jobs[start_index:]:
            duration = job.walltime_on(speed)
            entry = plan.place(job.job_id, job.procs, duration, frontier if keep_queue_order else now)
            if keep_queue_order and math.isfinite(entry.planned_start):
                frontier = entry.planned_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalPlanner({self.cluster.name}, {self.policy}, "
            f"{len(self.jobs)} waiting)"
        )


def get_policy(policy: "BatchPolicy | str") -> PlanningPolicy:
    """Resolve a policy identifier (enum member or name) to its function."""
    if isinstance(policy, str):
        try:
            policy = BatchPolicy(policy.lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in BatchPolicy)
            raise ValueError(f"unknown batch policy {policy!r}; expected one of {valid}") from exc
    return _POLICIES[policy]


def iter_policies() -> Iterable[tuple[BatchPolicy, PlanningPolicy]]:
    """Iterate over ``(identifier, planning function)`` pairs."""
    return _POLICIES.items()


def policy_name(policy: "BatchPolicy | Callable[..., ClusterPlan]") -> str:
    """Human-readable name of a policy identifier or planning function."""
    if isinstance(policy, BatchPolicy):
        return str(policy)
    for ident, func in _POLICIES.items():
        if func is policy:
            return str(ident)
    return getattr(policy, "__name__", repr(policy))
