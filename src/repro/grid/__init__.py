"""Grid middleware layer (the GridRPC-style architecture of the paper).

Three components, mirroring Section 2.1 of the paper:

* :class:`~repro.grid.client.TraceClient` — replays a workload trace,
  submitting each job to the agent at its submission time;
* :class:`~repro.grid.metascheduler.MetaScheduler` — the agent: maps every
  incoming job to a cluster (MCT by default, Random and RoundRobin are also
  available);
* :class:`~repro.grid.reallocation.ReallocationAgent` — the periodic
  reallocation mechanism, implementing Algorithm 1 (without cancellation)
  and Algorithm 2 (with cancellation) with any of the six heuristics.

:class:`~repro.grid.simulation.GridSimulation` wires the three components
with the batch servers on top of the simulation kernel and produces a
:class:`~repro.core.results.RunResult`.
"""

from repro.grid.client import TraceClient
from repro.grid.metascheduler import MappingPolicy, MetaScheduler
from repro.grid.multisubmission import MultiSubmissionAgent, MultiSubmissionSimulation
from repro.grid.reallocation import ReallocationAgent, ReallocationAlgorithm
from repro.grid.simulation import GridSimulation

__all__ = [
    "GridSimulation",
    "MappingPolicy",
    "MetaScheduler",
    "MultiSubmissionAgent",
    "MultiSubmissionSimulation",
    "ReallocationAgent",
    "ReallocationAlgorithm",
    "TraceClient",
]
