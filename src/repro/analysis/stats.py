"""Descriptive statistics over a run's job records.

These are the classic metrics of the parallel job scheduling literature
(response time, wait time, bounded slowdown) plus per-cluster breakdowns.
They complement the paper's comparison metrics: the comparison metrics need
a baseline run, the statistics here describe a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.batch.job import JobState
from repro.core.results import JobRecord, RunResult

#: Threshold (seconds) below which runtimes are clamped when computing the
#: bounded slowdown, as defined by Feitelson et al.  Ten seconds is the
#: customary value.
BOUNDED_SLOWDOWN_TAU = 10.0


@dataclass(frozen=True, slots=True)
class DistributionStats:
    """Summary statistics of a distribution of per-job values."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "DistributionStats":
        """Build the summary from raw values (zeros everywhere when empty)."""
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0)
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            median=float(np.median(data)),
            p95=float(np.percentile(data, 95)),
            maximum=float(data.max()),
        )


@dataclass(frozen=True, slots=True)
class ClusterBreakdown:
    """Per-cluster share of one run."""

    cluster: str
    jobs: int
    core_seconds: float
    mean_response_time: float


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Whole-run summary combining the individual statistics."""

    jobs: int
    completed: int
    rejected: int
    killed: int
    reallocations: int
    makespan: float
    response_time: DistributionStats
    wait_time: DistributionStats
    bounded_slowdown: DistributionStats
    clusters: Dict[str, ClusterBreakdown]


# --------------------------------------------------------------------- #
# Per-job quantities                                                     #
# --------------------------------------------------------------------- #
def bounded_slowdown(record: JobRecord, tau: float = BOUNDED_SLOWDOWN_TAU) -> Optional[float]:
    """Bounded slowdown of one job: ``max(1, response / max(runtime, tau))``.

    Returns ``None`` for jobs that never completed.
    """
    response = record.response_time
    if response is None:
        return None
    effective = min(record.runtime, record.walltime)
    return max(1.0, response / max(effective, tau))


def _completed(result: RunResult) -> List[JobRecord]:
    return [record for record in result if record.completion_time is not None]


# --------------------------------------------------------------------- #
# Distributions                                                          #
# --------------------------------------------------------------------- #
def response_time_stats(result: RunResult) -> DistributionStats:
    """Distribution of response times over the completed jobs."""
    return DistributionStats.from_values(
        record.response_time for record in _completed(result)
    )


def wait_time_stats(result: RunResult) -> DistributionStats:
    """Distribution of wait times (start minus submission) over completed jobs."""
    return DistributionStats.from_values(
        record.wait_time for record in _completed(result) if record.wait_time is not None
    )


def slowdown_stats(result: RunResult, tau: float = BOUNDED_SLOWDOWN_TAU) -> DistributionStats:
    """Distribution of bounded slowdowns over the completed jobs."""
    values = [bounded_slowdown(record, tau) for record in _completed(result)]
    return DistributionStats.from_values(v for v in values if v is not None)


# --------------------------------------------------------------------- #
# Per-cluster breakdown                                                  #
# --------------------------------------------------------------------- #
def per_cluster_breakdown(result: RunResult) -> Dict[str, ClusterBreakdown]:
    """Jobs, core-seconds and mean response time per (final) cluster."""
    grouped: Dict[str, List[JobRecord]] = {}
    for record in _completed(result):
        if record.final_cluster is None:
            continue
        grouped.setdefault(record.final_cluster, []).append(record)
    breakdown = {}
    for cluster, records in sorted(grouped.items()):
        core_seconds = sum(
            record.procs * (record.completion_time - record.start_time)
            for record in records
            if record.start_time is not None
        )
        responses = [record.response_time for record in records]
        breakdown[cluster] = ClusterBreakdown(
            cluster=cluster,
            jobs=len(records),
            core_seconds=float(core_seconds),
            mean_response_time=float(np.mean(responses)) if responses else 0.0,
        )
    return breakdown


# --------------------------------------------------------------------- #
# Whole-run summary                                                      #
# --------------------------------------------------------------------- #
def summarize_run(result: RunResult, tau: float = BOUNDED_SLOWDOWN_TAU) -> RunSummary:
    """All descriptive statistics of one run, in a single object."""
    return RunSummary(
        jobs=len(result),
        completed=result.completed_count,
        rejected=result.rejected_count,
        killed=result.killed_count,
        reallocations=result.total_reallocations,
        makespan=result.makespan,
        response_time=response_time_stats(result),
        wait_time=wait_time_stats(result),
        bounded_slowdown=slowdown_stats(result, tau),
        clusters=per_cluster_breakdown(result),
    )
