"""Differential and property tests of the columnar estimation engine.

The acceptance property of the vectorised selection path: on any candidate
set, ``Heuristic.select_index`` over an
:class:`~repro.core.estimation.EstimateMatrix` must pick the same job —
including the (submit_time, job_id) tie-breaks — as the object-based
``Heuristic.select`` over the corresponding :class:`JobEstimate` list, for
all six heuristics, across a full selection drain (the alive set shrinking
one candidate per step).  Randomized inputs deliberately include duplicate
keys, all-``inf`` rows, candidates that fit nowhere, saturated clusters
(fit but ``inf`` ECT) and single-cluster platforms.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.estimation import EstimateMatrix
from repro.core.heuristics import (
    HEURISTIC_NAMES,
    JobEstimate,
    get_heuristic,
)
from tests.conftest import make_job

#: ECT values drawn with replacement — small pool forces key collisions so
#: the tie-breaks actually decide selections.
_ECT_POOL = (50.0, 100.0, 100.0, 250.0, 400.0, math.inf)
_SUBMIT_POOL = (0.0, 10.0, 10.0, 30.0)


def random_candidates(rng: random.Random, clusters, count):
    """Parallel (JobEstimate list, EstimateMatrix) over one random set."""
    matrix = EstimateMatrix(clusters)
    estimates = []
    job_ids = rng.sample(range(1, 10 * count + 1), count)
    for job_id in job_ids:
        job = make_job(
            job_id,
            submit_time=rng.choice(_SUBMIT_POOL),
            procs=rng.randint(1, 32),
        )
        ects = {}
        for name in clusters:
            roll = rng.random()
            if roll < 0.2:
                continue  # does not fit on this cluster
            ects[name] = rng.choice(_ECT_POOL)
        if rng.random() < 0.1:
            ects = {}  # fits nowhere
        current_cluster = rng.choice(list(clusters) + [None])
        if current_cluster is not None and rng.random() < 0.7:
            current_ect = ects.get(current_cluster, math.inf)
        else:
            current_ect = rng.choice(_ECT_POOL)
        estimates.append(
            JobEstimate(
                job=job,
                current_cluster=current_cluster,
                current_ect=current_ect,
                ects=ects,
            )
        )
        matrix.add_row(
            job.job_id, job.submit_time, job.procs, ects, current_cluster, current_ect
        )
    return estimates, matrix


class TestDifferentialSelection:
    """select_index == select, over randomized sets and full drains."""

    @pytest.mark.parametrize("heuristic_name", HEURISTIC_NAMES)
    @pytest.mark.parametrize("clusters", [("a",), ("a", "b"), ("a", "b", "c", "d", "e")])
    def test_full_drain_matches_object_reference(self, heuristic_name, clusters):
        heuristic = get_heuristic(heuristic_name)
        # hash() is salted per process; crc32 keeps the trials reproducible.
        import zlib

        rng = random.Random(zlib.crc32(f"{heuristic_name}:{clusters}".encode()))
        for trial in range(20):
            estimates, matrix = random_candidates(rng, clusters, rng.randint(1, 40))
            remaining = {est.job.job_id: est for est in estimates}
            while remaining:
                expected = heuristic.select(list(remaining.values()))
                row = heuristic.select_index(matrix)
                assert matrix.job_id_at(row) == expected.job.job_id, (
                    f"{heuristic_name} diverged on trial {trial} with "
                    f"{len(remaining)} candidates left"
                )
                del remaining[expected.job.job_id]
                matrix.discard_row(row)

    @pytest.mark.parametrize("heuristic_name", HEURISTIC_NAMES)
    def test_all_inf_rows_are_still_selectable(self, heuristic_name):
        """Candidates that fit nowhere must not break (or win unduly) selection."""
        heuristic = get_heuristic(heuristic_name)
        estimates = [
            JobEstimate(make_job(1, submit_time=5.0), "a", 100.0, {"a": 100.0, "b": 90.0}),
            JobEstimate(make_job(2, submit_time=1.0), None, math.inf, {}),
            JobEstimate(make_job(3, submit_time=9.0), "b", math.inf, {"a": math.inf}),
        ]
        matrix = EstimateMatrix(("a", "b"))
        for est in estimates:
            matrix.add_row(
                est.job.job_id, est.job.submit_time, est.job.procs,
                est.ects, est.current_cluster, est.current_ect,
            )
        expected = heuristic.select(estimates)
        assert matrix.job_id_at(heuristic.select_index(matrix)) == expected.job.job_id

    @pytest.mark.parametrize("heuristic_name", HEURISTIC_NAMES)
    def test_tie_break_is_submit_time_then_job_id(self, heuristic_name):
        heuristic = get_heuristic(heuristic_name)
        # Identical estimates everywhere: only the tie-break decides.
        ects = {"a": 100.0, "b": 100.0}
        estimates = [
            JobEstimate(make_job(7, submit_time=10.0), "a", 100.0, dict(ects)),
            JobEstimate(make_job(2, submit_time=10.0), "a", 100.0, dict(ects)),
            JobEstimate(make_job(9, submit_time=20.0), "a", 100.0, dict(ects)),
        ]
        matrix = EstimateMatrix(("a", "b"))
        for est in estimates:
            matrix.add_row(
                est.job.job_id, est.job.submit_time, est.job.procs,
                est.ects, est.current_cluster, est.current_ect,
            )
        chosen = matrix.job_id_at(heuristic.select_index(matrix))
        assert chosen == heuristic.select(estimates).job.job_id == 2

    def test_empty_selection_raises(self):
        matrix = EstimateMatrix(("a",))
        for name in HEURISTIC_NAMES:
            with pytest.raises(ValueError):
                get_heuristic(name).select_index(matrix)
        matrix.add_row(1, 0.0, 1, {"a": 10.0})
        matrix.discard_row(0)
        with pytest.raises(ValueError):
            get_heuristic("minmin").select_index(matrix)


class TestDerivedVectors:
    """The matrix reductions replicate the JobEstimate property semantics."""

    @pytest.mark.parametrize("clusters", [("a",), ("a", "b"), ("a", "b", "c")])
    def test_derived_quantities_match_scalar_properties(self, clusters):
        rng = random.Random(20100326 + len(clusters))
        estimates, matrix = random_candidates(rng, clusters, 60)
        rows = matrix.alive_rows()
        best = matrix.best_ects(rows)
        second = matrix.second_best_ects(rows)
        gains = matrix.gains(rows)
        relative = matrix.relative_gains(rows)
        sufferages = matrix.sufferages(rows)
        for index, est in enumerate(estimates):
            assert best[index] == est.best_ect
            assert second[index] == est.second_best_ect
            assert gains[index] == est.gain
            assert relative[index] == est.relative_gain
            assert sufferages[index] == est.sufferage

    def test_single_fitting_cluster_second_best_is_best(self):
        """A lone fit entry is its own second-best — not the inf padding."""
        matrix = EstimateMatrix(("a", "b", "c"))
        matrix.add_row(1, 0.0, 1, {"b": 70.0})
        rows = np.array([0])
        assert matrix.best_ects(rows)[0] == 70.0
        assert matrix.second_best_ects(rows)[0] == 70.0  # not inf
        assert matrix.sufferages(rows)[0] == 0.0

    def test_saturated_cluster_is_not_a_missing_cluster(self):
        """fit-with-inf-ECT and does-not-fit differ for Sufferage."""
        matrix = EstimateMatrix(("a", "b"))
        matrix.add_row(1, 0.0, 1, {"a": 50.0, "b": math.inf})  # fits both
        matrix.add_row(2, 0.0, 1, {"a": 50.0})  # fits only a
        rows = np.array([0, 1])
        assert list(matrix.best_ects(rows)) == [50.0, 50.0]
        assert list(matrix.second_best_ects(rows)) == [math.inf, 50.0]
        assert list(matrix.sufferages(rows)) == [math.inf, 0.0]


class TestMatrixMechanics:
    """Incremental insert/discard/refresh behaviour of the store itself."""

    def test_rows_grow_past_initial_capacity_with_stable_indices(self):
        matrix = EstimateMatrix(("a", "b"))
        for job_id in range(200):
            row = matrix.add_row(job_id, float(job_id), 1, {"a": float(job_id + 1)})
            assert row == job_id
        assert matrix.n_rows == 200
        assert matrix.alive_count == 200
        # Early rows survived the reallocation-on-growth.
        assert matrix.row_of(0) == 0
        assert matrix.row_ects(0) == {"a": 1.0}
        assert matrix.job_id_at(199) == 199
        assert matrix.current_of(5) == (None, math.inf)

    def test_discard_masks_but_keeps_indices_valid(self):
        matrix = EstimateMatrix(("a",))
        matrix.add_row(10, 0.0, 1, {"a": 1.0})
        matrix.add_row(20, 0.0, 1, {"a": 2.0})
        matrix.add_row(30, 0.0, 1, {"a": 3.0})
        matrix.discard_job(20)
        assert matrix.alive_count == 2
        assert list(matrix.alive_rows()) == [0, 2]
        assert matrix.alive_job_ids() == [10, 30]
        assert not matrix.is_alive(1)
        assert matrix.row_ects(1) == {"a": 2.0}  # readable, just not selectable
        matrix.discard_job(20)  # idempotent
        matrix.discard_job(99)  # unknown ids ignored
        assert matrix.alive_count == 2

    def test_duplicate_row_and_duplicate_cluster_are_rejected(self):
        with pytest.raises(ValueError):
            EstimateMatrix(("a", "a"))
        matrix = EstimateMatrix(("a",))
        matrix.add_row(1, 0.0, 1, {"a": 1.0})
        with pytest.raises(ValueError):
            matrix.add_row(1, 0.0, 1, {"a": 2.0})

    def test_set_and_clear_entry_drive_fit_semantics(self):
        matrix = EstimateMatrix(("a", "b"))
        matrix.add_row(1, 0.0, 1, {"a": 10.0, "b": 20.0})
        matrix.set_entry(0, "b", 5.0)
        assert matrix.row_ects(0) == {"a": 10.0, "b": 5.0}
        matrix.clear_entry(0, "b")  # stale-prune: no longer fits there
        assert matrix.row_ects(0) == {"a": 10.0}
        rows = np.array([0])
        assert matrix.best_ects(rows)[0] == 10.0
        assert matrix.second_best_ects(rows)[0] == 10.0
        # Re-fitting later re-creates the entry.
        matrix.set_entry(0, "b", 7.0)
        assert matrix.row_ects(0) == {"a": 10.0, "b": 7.0}

    def test_set_current_round_trips(self):
        matrix = EstimateMatrix(("a", "b"))
        matrix.add_row(1, 0.0, 1, {"a": 10.0}, "a", 10.0)
        assert matrix.current_of(0) == ("a", 10.0)
        matrix.set_current(0, "b", 33.0)
        assert matrix.current_of(0) == ("b", 33.0)
        matrix.set_current(0, None, math.inf)
        assert matrix.current_of(0) == (None, math.inf)

    def test_out_of_range_rows_raise(self):
        matrix = EstimateMatrix(("a",))
        with pytest.raises(IndexError):
            matrix.row_ects(0)
        matrix.add_row(1, 0.0, 1, {"a": 1.0})
        with pytest.raises(IndexError):
            matrix.discard_row(1)
        with pytest.raises(KeyError):
            matrix.row_of(2)


class TestTableStalePrune:
    """_EstimateTable.refresh_clusters prunes entries for jobs that stop fitting."""

    def test_refresh_prunes_no_longer_fitting_cluster(self, kernel):
        from repro.grid.reallocation import _EstimateTable
        from tests.conftest import make_server

        alpha = make_server(kernel, "alpha", procs=8)
        beta = make_server(kernel, "beta", procs=8)
        beta.submit(make_job(100, procs=8, runtime=1000.0))  # pins the cluster
        job = make_job(1, procs=4)
        beta.submit(job)
        table = _EstimateTable([alpha, beta])
        table.add_cancelled_many([job], {1: "beta"})
        assert set(table.estimate_of(1).ects) == {"alpha", "beta"}

        # The job stops fitting on alpha (a capacity change degrades the
        # cluster below the request); the refresh must stale-prune alpha's
        # entry instead of keeping the outdated ECT.
        alpha.cluster.apply_capacity(2, kernel.now)
        table.refresh_clusters({"alpha"})
        estimate = table.estimate_of(1)
        assert set(estimate.ects) == {"beta"}
        assert estimate.best_cluster == "beta"

    def test_refresh_degrades_current_ect_of_pruned_origin(self, kernel):
        from repro.grid.reallocation import _EstimateTable
        from tests.conftest import make_server

        alpha = make_server(kernel, "alpha", procs=8)
        beta = make_server(kernel, "beta", procs=8)
        beta.submit(make_job(100, procs=8, runtime=1000.0))  # pins the cluster
        job = make_job(1, procs=4)
        beta.submit(job)
        beta.cancel(job)
        table = _EstimateTable([alpha, beta])
        table.add_cancelled_many([job], {1: "beta"})
        assert math.isfinite(table.estimate_of(1).current_ect)

        beta.apply_capacity_change(0)
        table.refresh_clusters({"beta"})
        estimate = table.estimate_of(1)
        assert set(estimate.ects) == {"alpha"}
        assert estimate.current_ect == math.inf  # resubmitting there is impossible


class TestColumnMaskingRoundTrip:
    """Masked columns re-enter cleanly: mask -> refresh -> unmask."""

    def test_outage_masks_and_recovery_unmasks_the_column(self, kernel):
        from repro.grid.reallocation import _EstimateTable
        from tests.conftest import make_server

        alpha = make_server(kernel, "alpha", procs=8)
        beta = make_server(kernel, "beta", procs=8)
        # Algorithm-2 style candidates: cancelled from beta, clusters idle,
        # so the pre-outage estimates must reappear exactly on recovery.
        jobs = [make_job(i, procs=2 + i, runtime=100.0) for i in range(3)]
        table = _EstimateTable([alpha, beta])
        table.add_cancelled_many(jobs, {job.job_id: "beta" for job in jobs})
        before = {job.job_id: table.estimate_of(job.job_id).ects for job in jobs}
        assert all(set(ects) == {"alpha", "beta"} for ects in before.values())

        # Mask: beta goes down, its whole column disappears from the
        # candidates' view (down == not fitting, as Sufferage requires).
        beta.apply_capacity_change(0)
        table.refresh_clusters({"beta"})
        masked_rows = [table.matrix.row_of(job.job_id) for job in jobs]
        for job, row in zip(jobs, masked_rows):
            estimate = table.estimate_of(job.job_id)
            assert set(estimate.ects) == {"alpha"}
            assert estimate.current_ect == math.inf
            assert not table.matrix._fits[row, table.matrix.col_index["beta"]]

        # Unmask: beta recovers and a refresh re-enters the column with
        # the exact estimates of the pre-outage build (the queue state
        # underneath is unchanged).
        beta.apply_capacity_change(8)
        table.refresh_clusters({"beta"})
        for job in jobs:
            estimate = table.estimate_of(job.job_id)
            assert estimate.ects == before[job.job_id]
            assert estimate.current_ect == before[job.job_id]["beta"]
