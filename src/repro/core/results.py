"""Result containers produced by the grid simulation.

A :class:`RunResult` is the immutable outcome of one simulated experiment:
the final state of every job of the trace plus run-level counters (number
of reallocations, simulated makespan, ...).  The evaluation metrics of the
paper (:mod:`repro.core.metrics`) are computed by comparing two
``RunResult`` objects over the same trace — one with reallocation, one
without.

Since the columnar result pipeline the canonical backing of a result is a
:class:`~repro.batch.jobtable.JobTable`: :meth:`RunResult.from_jobs` hands
the final job state to the table in bulk, the store serializes the table's
columns directly, and the aggregate metrics are NumPy reductions.  The
object world — one :class:`JobRecord` per job — is materialised *lazily*:
per id on :meth:`RunResult.__getitem__`, per chunk on iteration, and as a
cached dict only when :attr:`RunResult.records` is actually read.  Results
built from a plain record dict (hand-written tests, legacy callers) keep
working unchanged; :meth:`RunResult.to_table` converts either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.batch.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.batch.jobtable import JobTable


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Final state of one job at the end of a run."""

    job_id: int
    submit_time: float
    procs: int
    runtime: float
    walltime: float
    origin_site: Optional[str]
    final_cluster: Optional[str]
    start_time: Optional[float]
    completion_time: Optional[float]
    state: JobState
    killed: bool
    reallocation_count: int
    outage_kills: int = 0

    @property
    def response_time(self) -> Optional[float]:
        """Completion minus submission, or ``None`` for unfinished jobs."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    @property
    def wait_time(self) -> Optional[float]:
        """Start minus submission, or ``None`` for jobs that never started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        """Snapshot the final state of a live :class:`~repro.batch.job.Job`."""
        return cls(
            job_id=job.job_id,
            submit_time=job.submit_time,
            procs=job.procs,
            runtime=job.runtime,
            walltime=job.walltime,
            origin_site=job.origin_site,
            final_cluster=job.cluster,
            start_time=job.start_time,
            completion_time=job.completion_time,
            state=job.state,
            killed=job.killed,
            reallocation_count=job.reallocation_count,
            outage_kills=job.outage_kills,
        )

    # ------------------------------------------------------------------ #
    # Serialization (JSON-safe, used by repro.store and the campaign     #
    # engine's process boundary)                                         #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (floats, ints, strings, ``None``)."""
        return {
            "job_id": self.job_id,
            "submit_time": self.submit_time,
            "procs": self.procs,
            "runtime": self.runtime,
            "walltime": self.walltime,
            "origin_site": self.origin_site,
            "final_cluster": self.final_cluster,
            "start_time": self.start_time,
            "completion_time": self.completion_time,
            "state": self.state.value,
            "killed": self.killed,
            "reallocation_count": self.reallocation_count,
            "outage_kills": self.outage_kills,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            job_id=int(data["job_id"]),
            submit_time=float(data["submit_time"]),
            procs=int(data["procs"]),
            runtime=float(data["runtime"]),
            walltime=float(data["walltime"]),
            origin_site=data["origin_site"],
            final_cluster=data["final_cluster"],
            start_time=data["start_time"],
            completion_time=data["completion_time"],
            state=JobState(data["state"]),
            killed=bool(data["killed"]),
            reallocation_count=int(data["reallocation_count"]),
            outage_kills=int(data.get("outage_kills", 0)),
        )


class RunResult:
    """Outcome of one simulated experiment.

    Parameters
    ----------
    label:
        Human-readable description of the configuration.
    records:
        Mapping from job id to :class:`JobRecord` (mutually exclusive with
        ``table``).  Without either, the result starts with an empty,
        caller-mutable record dict — the hand-construction path.
    total_reallocations:
        Number of job moves performed by the reallocation agent (0 for the
        baseline runs).
    reallocation_events:
        Number of reallocation ticks that fired.
    makespan:
        Simulated time at which the last job completed.
    jobs_killed_by_outage:
        Disruption accounting: running jobs killed by capacity shrinks
        (a job killed by two outages counts twice).
    jobs_requeued:
        Outage-killed jobs re-entered at the head of their queue.
    work_lost:
        Core-seconds of execution thrown away by outage kills.
    metadata:
        Free-form configuration details (scenario, platform, policy, ...).
    table:
        Columnar :class:`~repro.batch.jobtable.JobTable` backing (the
        simulation / store path).  A table-backed result answers counts,
        makespans and comparisons with NumPy reductions and materialises
        :class:`JobRecord` objects only on demand.
    """

    __slots__ = (
        "label",
        "total_reallocations",
        "reallocation_events",
        "makespan",
        "jobs_killed_by_outage",
        "jobs_requeued",
        "work_lost",
        "metadata",
        "_records",
        "_table",
        "_row_index",
    )

    def __init__(
        self,
        label: str,
        records: Optional[Dict[int, JobRecord]] = None,
        total_reallocations: int = 0,
        reallocation_events: int = 0,
        makespan: float = 0.0,
        jobs_killed_by_outage: int = 0,
        jobs_requeued: int = 0,
        work_lost: float = 0.0,
        metadata: Optional[Dict[str, object]] = None,
        table: Optional["JobTable"] = None,
    ) -> None:
        if records is not None and table is not None:
            raise ValueError("pass either records or table, not both")
        self.label = label
        self.total_reallocations = total_reallocations
        self.reallocation_events = reallocation_events
        self.makespan = makespan
        self.jobs_killed_by_outage = jobs_killed_by_outage
        self.jobs_requeued = jobs_requeued
        self.work_lost = work_lost
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self._table = table
        self._records: Optional[Dict[int, JobRecord]] = (
            records if records is not None else (None if table is not None else {})
        )
        self._row_index: Optional[Dict[int, int]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult(label={self.label!r}, jobs={len(self)}, "
            f"reallocations={self.total_reallocations}, makespan={self.makespan})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return (
            self.label == other.label
            and self.total_reallocations == other.total_reallocations
            and self.reallocation_events == other.reallocation_events
            and self.makespan == other.makespan
            and self.jobs_killed_by_outage == other.jobs_killed_by_outage
            and self.jobs_requeued == other.jobs_requeued
            and self.work_lost == other.work_lost
            and self.metadata == other.metadata
            and self.records == other.records
        )

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_jobs(
        cls,
        label: str,
        jobs: Iterable[Job],
        total_reallocations: int = 0,
        reallocation_events: int = 0,
        jobs_killed_by_outage: int = 0,
        jobs_requeued: int = 0,
        work_lost: float = 0.0,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "RunResult":
        """Build a result from the final state of the trace's jobs.

        The jobs are snapshot *in bulk* into a columnar
        :class:`~repro.batch.jobtable.JobTable` (one row append per job,
        outcome columns written unconditionally — the final state is
        definitive); no per-job :class:`JobRecord` is materialised.
        """
        from repro.batch.jobtable import JobTable

        table = JobTable()
        for job in jobs:
            table.add_job(job, final=True)
        return cls.from_table(
            label,
            table,
            total_reallocations=total_reallocations,
            reallocation_events=reallocation_events,
            jobs_killed_by_outage=jobs_killed_by_outage,
            jobs_requeued=jobs_requeued,
            work_lost=work_lost,
            metadata=metadata,
        )

    @classmethod
    def from_table(
        cls,
        label: str,
        table: "JobTable",
        total_reallocations: int = 0,
        reallocation_events: int = 0,
        jobs_killed_by_outage: int = 0,
        jobs_requeued: int = 0,
        work_lost: float = 0.0,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "RunResult":
        """Adopt a columnar :class:`~repro.batch.jobtable.JobTable` as backing.

        Zero copies: the result *owns* the table from here on (the
        makespan is one vectorised reduction over its completion column)
        and materialises :class:`JobRecord` objects only lazily.
        """
        return cls(
            label=label,
            total_reallocations=total_reallocations,
            reallocation_events=reallocation_events,
            makespan=table.makespan(),
            jobs_killed_by_outage=jobs_killed_by_outage,
            jobs_requeued=jobs_requeued,
            work_lost=work_lost,
            metadata=dict(metadata or {}),
            table=table,
        )

    @property
    def records(self) -> Dict[int, JobRecord]:
        """Mapping from job id to :class:`JobRecord`.

        On a table-backed result this materialises (and caches) one
        record per row on first read — the legacy bulk-object view.  The
        zero-object paths (:meth:`to_table`, the aggregate counts, the
        metric comparisons) never touch it.
        """
        if self._records is None:
            records: Dict[int, JobRecord] = {}
            if len(self._table):
                for chunk in self._table.records():
                    for record in chunk:
                        records[record.job_id] = record
            self._records = records
        return self._records

    def to_table(self) -> "JobTable":
        """Columnar view of the result.

        A table-backed result returns its *own* table (zero copies, rows
        in simulation order); a record-dict result builds one in ascending
        job-id order.  Either carries the outcome columns, so aggregate
        metrics (counts, response-time means, makespan) are NumPy
        reductions — the form :func:`repro.core.metrics.compare_tables`
        consumes.
        """
        if self._table is not None:
            return self._table
        from repro.batch.jobtable import JobTable

        return JobTable.from_records(
            self._records[job_id] for job_id in sorted(self._records)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (see :meth:`JobRecord.to_dict`).

        Records are emitted in ascending job-id order so the serialized
        form of a result is canonical: two equal results produce identical
        JSON documents.  The table-backed path serializes straight from
        the columns without materialising records.
        """
        if self._table is not None and self._records is None:
            records = self._table.record_dicts()
        else:
            records = [self.records[job_id].to_dict() for job_id in sorted(self.records)]
        return {
            "label": self.label,
            "total_reallocations": self.total_reallocations,
            "reallocation_events": self.reallocation_events,
            "makespan": self.makespan,
            "jobs_killed_by_outage": self.jobs_killed_by_outage,
            "jobs_requeued": self.jobs_requeued,
            "work_lost": self.work_lost,
            "metadata": dict(self.metadata),
            "records": records,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (columnar: no records are built)."""
        from repro.batch.jobtable import JobTable

        return cls(
            label=data["label"],
            total_reallocations=int(data["total_reallocations"]),
            reallocation_events=int(data["reallocation_events"]),
            makespan=float(data["makespan"]),
            jobs_killed_by_outage=int(data.get("jobs_killed_by_outage", 0)),
            jobs_requeued=int(data.get("jobs_requeued", 0)),
            work_lost=float(data.get("work_lost", 0.0)),
            metadata=dict(data["metadata"]),
            table=JobTable.from_record_dicts(data["records"]),
        )

    # ------------------------------------------------------------------ #
    # Access                                                             #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._table)

    def __iter__(self) -> Iterator[JobRecord]:
        if self._records is not None:
            return iter(self._records.values())
        return self._iter_table()

    def _iter_table(self) -> Iterator[JobRecord]:
        if len(self._table) == 0:
            return
        for chunk in self._table.records():
            yield from chunk

    def __getitem__(self, job_id: int) -> JobRecord:
        if self._records is not None:
            return self._records[job_id]
        if self._row_index is None:
            self._row_index = {
                jid: i for i, jid in enumerate(self._table.job_id.tolist())
            }
        return self._table.record(self._row_index[job_id])

    @property
    def completed_count(self) -> int:
        """Number of jobs that finished."""
        if self._records is None:
            return self._table.completed_count
        return sum(1 for r in self._records.values() if r.state is JobState.COMPLETED)

    @property
    def rejected_count(self) -> int:
        """Number of jobs that fit on no cluster of the platform."""
        if self._records is None:
            return self._table.rejected_count
        return sum(1 for r in self._records.values() if r.state is JobState.REJECTED)

    @property
    def killed_count(self) -> int:
        """Number of jobs killed at their walltime."""
        if self._records is None:
            return self._table.killed_count
        return sum(1 for r in self._records.values() if r.killed)

    @property
    def disrupted_count(self) -> int:
        """Number of distinct jobs killed at least once by an outage."""
        if self._records is None:
            return self._table.disrupted_count
        return sum(1 for r in self._records.values() if r.outage_kills > 0)

    def completion_times(self) -> Dict[int, float]:
        """Job id -> completion time, for completed jobs only."""
        if self._records is None:
            table = self._table
            completion = table.completion_time
            if completion is None:
                return {}
            mask = ~np.isnan(completion)
            return dict(
                zip(table.job_id[mask].tolist(), completion[mask].tolist())
            )
        return {
            job_id: record.completion_time
            for job_id, record in self._records.items()
            if record.completion_time is not None
        }

    def response_times(self) -> Dict[int, float]:
        """Job id -> response time, for completed jobs only."""
        if self._records is None:
            table = self._table
            completion = table.completion_time
            if completion is None:
                return {}
            mask = ~np.isnan(completion)
            return dict(
                zip(
                    table.job_id[mask].tolist(),
                    (completion[mask] - table.submit_time[mask]).tolist(),
                )
            )
        return {
            job_id: record.response_time
            for job_id, record in self._records.items()
            if record.response_time is not None
        }

    def mean_response_time(self) -> float:
        """Mean response time over all completed jobs (0.0 if none completed)."""
        if self._records is None:
            return self._table.mean_response_time()
        values = [
            record.response_time
            for record in self._records.values()
            if record.response_time is not None
        ]
        return sum(values) / len(values) if values else 0.0
