"""The paper's platforms.

Section 3.2 of the paper describes two platforms of three clusters each:

* **Grid'5000 platform** — Bordeaux (640 cores, reference speed), Lyon
  (270 cores, 20 % faster in the heterogeneous case) and Toulouse
  (434 cores, 40 % faster).
* **PWA + Grid'5000 platform** — Bordeaux (640 cores, reference speed),
  CTC (430 cores, 20 % faster) and SDSC (128 cores, 40 % faster).

Each platform exists in a homogeneous variant (all speeds equal to 1.0,
processor counts unchanged) and a heterogeneous variant (speeds as above).
"""

from __future__ import annotations

from repro.platform.spec import ClusterSpec, PlatformSpec

#: Site names of the Grid'5000 platform (order matters for trace generation).
GRID5000_SITES: tuple[str, ...] = ("bordeaux", "lyon", "toulouse")

#: Site names of the PWA + Grid'5000 platform.
PWA_G5K_SITES: tuple[str, ...] = ("bordeaux", "ctc", "sdsc")

_G5K_SPECS = {
    "bordeaux": (640, 1.0),
    "lyon": (270, 1.2),
    "toulouse": (434, 1.4),
}

_PWA_SPECS = {
    "bordeaux": (640, 1.0),
    "ctc": (430, 1.2),
    "sdsc": (128, 1.4),
}


def _build(name: str, sites: tuple[str, ...], specs: dict, heterogeneous: bool) -> PlatformSpec:
    clusters = []
    for site in sites:
        procs, speed = specs[site]
        clusters.append(ClusterSpec(site, procs, speed if heterogeneous else 1.0))
    suffix = "heterogeneous" if heterogeneous else "homogeneous"
    return PlatformSpec(f"{name}-{suffix}", tuple(clusters))


def grid5000_platform(heterogeneous: bool = False) -> PlatformSpec:
    """The Grid'5000 platform (Bordeaux / Lyon / Toulouse).

    Parameters
    ----------
    heterogeneous:
        When true, Lyon is 20 % and Toulouse 40 % faster than Bordeaux;
        otherwise all clusters run at the reference speed.
    """
    return _build("grid5000", GRID5000_SITES, _G5K_SPECS, heterogeneous)


def pwa_g5k_platform(heterogeneous: bool = False) -> PlatformSpec:
    """The PWA + Grid'5000 platform (Bordeaux / CTC / SDSC)."""
    return _build("pwa-g5k", PWA_G5K_SITES, _PWA_SPECS, heterogeneous)


def platform_for_scenario(scenario_name: str, heterogeneous: bool = False) -> PlatformSpec:
    """Platform matching a scenario name of the paper.

    The six monthly Grid'5000 scenarios (``jan`` .. ``jun``) use the
    Grid'5000 platform; the six-month ``pwa-g5k`` scenario uses the PWA +
    Grid'5000 platform.
    """
    if scenario_name.lower() in {"pwa-g5k", "pwa_g5k", "pwag5k"}:
        return pwa_g5k_platform(heterogeneous)
    return grid5000_platform(heterogeneous)
