"""Plain-text rendering of tables, figures and summaries.

The benchmark harness prints, for every regenerated table, the same rows
the paper reports (one row per batch policy and heuristic, one column per
scenario) plus a paper-vs-measured view of the AVG column when the paper
published one.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.heuristics import HEURISTIC_LABELS
from repro.experiments.figures import Figure1Result, Figure2Result, GanttSnapshot
from repro.experiments.tables import (
    METRIC_TITLES,
    ComparisonSummary,
    SweepReport,
    SweepReportCell,
    TableResult,
)


def _format_value(value: float, decimals: int) -> str:
    return f"{value:.{decimals}f}"


def _heuristic_label(name: str, cancellation: bool = False) -> str:
    label = HEURISTIC_LABELS.get(name, name)
    return f"{label}-C" if cancellation else label


def render_table(table: TableResult, decimals: int = 2) -> str:
    """Render a :class:`TableResult` as an aligned plain-text table."""
    cancellation = table.number is not None and table.number >= 10
    header = ["Batch", "Heuristic", *table.columns]
    body: List[List[str]] = []
    for row in table.rows:
        body.append(
            [
                row.batch_policy.upper(),
                _heuristic_label(row.heuristic, cancellation),
                *[_format_value(v, decimals) for v in row.values],
            ]
        )
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    title = f"Table {table.number}: {table.title}" if table.number else table.title
    lines.append(title)
    lines.append("-" * len(title))
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(header))))
    if table.paper_reference:
        lines.append("")
        lines.append("Paper AVG column vs measured AVG:")
        avg_index = table.columns.index("AVG") if "AVG" in table.columns else None
        for row in table.rows:
            reference = table.paper_reference.get((row.batch_policy, row.heuristic))
            if reference is None or avg_index is None:
                continue
            measured = row.values[avg_index]
            lines.append(
                f"  {row.batch_policy.upper():4s} {_heuristic_label(row.heuristic, cancellation):12s} "
                f"paper={_format_value(reference, decimals):>8s}  "
                f"measured={_format_value(measured, decimals):>8s}"
            )
    if table.notes:
        lines.append("")
        lines.append(table.notes)
    return "\n".join(lines)


def render_gantt(snapshot: GanttSnapshot, clusters: Sequence[str] | None = None) -> str:
    """Render a schedule snapshot as a textual Gantt chart."""
    lines = [f"t = {snapshot.time:.0f} s"]
    cluster_names = clusters
    if cluster_names is None:
        cluster_names = sorted({entry.cluster for entry in snapshot.entries})
    for cluster in cluster_names:
        lines.append(f"  {cluster}:")
        for entry in snapshot.for_cluster(cluster):
            state = "RUN " if entry.kind == "running" else "PLAN"
            lines.append(
                f"    [{state}] job {entry.job_label:>3s}  procs={entry.procs:<3d} "
                f"start={entry.start:>8.0f}  end={entry.end:>8.0f}"
            )
    return "\n".join(lines)


def render_figure1(figure: Figure1Result) -> str:
    """Render the Figure 1 example (schedules before and after reallocation)."""
    lines = ["Figure 1: example of reallocation between two clusters", ""]
    lines.append(figure.description)
    lines.append("")
    lines.append("Before reallocation:")
    lines.append(render_gantt(figure.before))
    lines.append("")
    lines.append("After reallocation:")
    lines.append(render_gantt(figure.after))
    lines.append("")
    lines.append(f"Moved jobs: {', '.join(figure.moved_job_labels) or '(none)'}")
    return "\n".join(lines)


def render_figure2(figure: Figure2Result, max_rows: int = 10) -> str:
    """Render the Figure 2 side-effect analysis."""
    lines = ["Figure 2: side effects of a reallocation", ""]
    lines.append(figure.description)
    lines.append("")
    lines.append(f"{'advanced jobs':>15s}: {len(figure.advanced)}")
    for delta in figure.advanced[:max_rows]:
        lines.append(f"    job {delta.job_id:>6d}  {delta.delta:>+10.0f} s")
    lines.append(f"{'delayed jobs':>15s}: {len(figure.delayed)}")
    for delta in figure.delayed[:max_rows]:
        lines.append(f"    job {delta.job_id:>6d}  {delta.delta:>+10.0f} s")
    return "\n".join(lines)


def _format_coord(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _cell_label(cell: SweepReportCell, grid_axes: Sequence[str]) -> str:
    """Config label plus the grid coordinates the label does not show."""
    extras = [
        f"{axis}={_format_coord(cell.coords[axis])}"
        for axis in grid_axes
        if axis
        in ("reallocation_period", "reallocation_threshold", "mapping_policy", "trace_fraction")
    ]
    label = cell.config.label()
    return f"{label} [{', '.join(extras)}]" if extras else label


def render_sweep_report(report: SweepReport, top: int = 5, decimals: int = 3) -> str:
    """Render a :class:`SweepReport`: ranked best cells + per-axis marginals."""
    direction = "lower is better" if report.lower_is_better else "higher is better"
    grid_axes = list(report.marginals)
    lines = [
        f"Sweep {report.sweep!r}: {METRIC_TITLES[report.metric]} "
        f"({direction}, {len(report.cells)} cells)"
    ]
    lines.append("-" * len(lines[0]))
    shown = report.cells[: max(top, 1)]
    lines.append(f"Best cells (top {len(shown)}):")
    for rank, cell in enumerate(shown, start=1):
        lines.append(
            f"  {rank:>2d}. {_format_value(cell.value, decimals):>10s}  "
            f"{_cell_label(cell, grid_axes)}"
        )
    if report.marginals:
        lines.append("")
        lines.append("Per-axis marginals (mean over all cells sharing the value):")
        for axis, rows in report.marginals.items():
            parts = ", ".join(
                f"{_format_coord(coordinate)} -> {_format_value(mean, decimals)} "
                f"({count} cells)"
                for coordinate, mean, count in rows
            )
            lines.append(f"  {axis}: {parts}")
    return "\n".join(lines)


def render_comparison(summary: ComparisonSummary) -> str:
    """Render the Algorithm 1 vs Algorithm 2 comparison (Section 4.3)."""
    rows: List[Tuple[str, Dict[str, float]]] = [
        (
            "Algorithm 1 (no cancellation)",
            {
                "impacted %": summary.standard.mean_pct_impacted,
                "realloc/job %": 100 * summary.standard.mean_reallocation_fraction,
                "earlier %": summary.standard.mean_pct_earlier,
                "rel. response": summary.standard.mean_relative_response,
            },
        ),
        (
            "Algorithm 2 (cancellation)",
            {
                "impacted %": summary.cancellation.mean_pct_impacted,
                "realloc/job %": 100 * summary.cancellation.mean_reallocation_fraction,
                "earlier %": summary.cancellation.mean_pct_earlier,
                "rel. response": summary.cancellation.mean_relative_response,
            },
        ),
    ]
    lines = ["Algorithm comparison (averages over the sweep)", ""]
    for label, values in rows:
        parts = ", ".join(f"{key}={value:.2f}" for key, value in values.items())
        lines.append(f"  {label}: {parts}")
    lines.append("")
    lines.append(
        "Paper headline: about "
        f"{100 * summary.headline['tasks_finishing_sooner_fraction']:.0f}% of tasks finish sooner "
        f"with a {100 * summary.headline['response_time_gain_fraction']:.0f}% average gain on "
        "response time, depending on the platform."
    )
    lines.append(
        "Cancellation improves the mean relative response time: "
        f"{summary.cancellation_improves_response}"
    )
    return "\n".join(lines)
