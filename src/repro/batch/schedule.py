"""Planned schedules of waiting jobs.

A :class:`ClusterPlan` is the output of one planning pass of a local
scheduling policy over the waiting queue of a cluster: for every waiting
job it records the planned start and the planned (walltime-based)
completion.  Reference plans are throw-away objects recomputed from
scratch; the scheduling hot path instead maintains an
:class:`IncrementalPlan` — the same entries plus the *residual*
availability profile left after every placed reservation — which supports
suffix replanning: appending a job at the tail places exactly one
reservation, and replanning from queue position ``k`` restores only the
reservations of positions ``k..end`` before placing them again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.batch.profile import AvailabilityProfile


@dataclass(frozen=True, slots=True)
class PlannedJob:
    """Planned placement of one waiting job.

    ``planned_end`` is based on the *walltime* (what the scheduler knows),
    not the actual runtime.
    """

    job_id: int
    procs: int
    planned_start: float
    planned_end: float

    @property
    def planned_duration(self) -> float:
        """Length of the reservation (walltime scaled to the cluster speed)."""
        return self.planned_end - self.planned_start

    def is_feasible(self) -> bool:
        """False when the policy could not place the job (start is infinite)."""
        return math.isfinite(self.planned_start)


class ClusterPlan:
    """Mapping from job id to :class:`PlannedJob` for one planning pass."""

    __slots__ = ("cluster_name", "computed_at", "_entries")

    def __init__(self, cluster_name: str, computed_at: float) -> None:
        self.cluster_name = cluster_name
        self.computed_at = computed_at
        self._entries: Dict[int, PlannedJob] = {}

    def add(self, entry: PlannedJob) -> None:
        """Record a planned job (one entry per job id)."""
        if entry.job_id in self._entries:
            raise ValueError(f"job {entry.job_id} already planned on {self.cluster_name}")
        self._entries[entry.job_id] = entry

    def get(self, job_id: int) -> Optional[PlannedJob]:
        """Planned placement of ``job_id`` or ``None`` if it is not in the plan."""
        return self._entries.get(job_id)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PlannedJob]:
        return iter(self._entries.values())

    def planned_start(self, job_id: int) -> float:
        """Planned start of ``job_id`` (``math.inf`` if absent/not placeable)."""
        entry = self._entries.get(job_id)
        return entry.planned_start if entry is not None else math.inf

    def planned_end(self, job_id: int) -> float:
        """Planned completion of ``job_id`` (``math.inf`` if absent/not placeable)."""
        entry = self._entries.get(job_id)
        return entry.planned_end if entry is not None else math.inf

    def startable_now(self) -> list[PlannedJob]:
        """Entries whose planned start equals the time the plan was computed."""
        return [e for e in self._entries.values() if e.planned_start == self.computed_at]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterPlan({self.cluster_name}, t={self.computed_at:.0f}, "
            f"{len(self._entries)} jobs)"
        )


class IncrementalPlan:
    """A plan that can be edited per event instead of rebuilt per event.

    State
    -----
    ``entries``
        One :class:`PlannedJob` per waiting job, in queue order.
    ``residual``
        The availability profile left over after subtracting every feasible
        entry's reservation from the cluster's base availability.  This is
        the profile a policy would hand to the *next* placement, so tail
        appends and what-if estimation queries need no replanning at all.
    ``now``
        Left edge of the residual; advanced lazily as simulated time moves.

    The **dirty-suffix invariant** ties the two together: at every queue
    position ``k``, the profile the reference planner would see before
    placing job ``k`` equals ``residual`` plus the reservations of entries
    ``k..end`` (:meth:`residual_before`).  Suffix replanning is therefore
    exact: :meth:`restore_suffix` adds those reservations back and
    truncates, after which placements continue as if the prefix had just
    been planned from scratch.
    """

    __slots__ = ("cluster_name", "now", "entries", "residual", "_cached_plan", "_frontier")

    def __init__(self, cluster_name: str, residual: AvailabilityProfile, now: float) -> None:
        self.cluster_name = cluster_name
        self.now = now
        self.entries: List[PlannedJob] = []
        self.residual = residual
        self._cached_plan: Optional[ClusterPlan] = None
        self._frontier: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def as_cluster_plan(self) -> ClusterPlan:
        """Materialise the entries as a regular :class:`ClusterPlan` (cached)."""
        if self._cached_plan is None:
            plan = ClusterPlan(self.cluster_name, computed_at=self.now)
            for entry in self.entries:
                plan.add(entry)
            self._cached_plan = plan
        return self._cached_plan

    def frontier(self) -> float:
        """FCFS queue-order frontier: latest finite planned start (or ``now``).

        Under FCFS planned starts are non-decreasing in queue order, so
        this is exactly the ``previous_start`` value the reference planner
        would hold after placing every current entry.
        """
        if self._frontier is None:
            frontier = self.now
            for entry in self.entries:
                if math.isfinite(entry.planned_start) and entry.planned_start > frontier:
                    frontier = entry.planned_start
            self._frontier = frontier
        return self._frontier

    def residual_before(self, index: int) -> AvailabilityProfile:
        """Profile a planner would see before placing queue position ``index``.

        Reconstructed as a copy (the live residual is observably untouched).
        On the array engine the suffix reservations are released in bulk on
        the live residual under a checkpoint and the mutation rolled back —
        O(suffix + breakpoints) instead of copy-and-replay; the list engine
        keeps the historical per-entry replay.
        """
        residual = self.residual
        suffix = [
            (entry.planned_start, entry.planned_end, entry.procs)
            for entry in self.entries[index:]
            if entry.is_feasible()
        ]
        if hasattr(residual, "checkpoint"):
            state = residual.checkpoint()
            try:
                residual.release_many(suffix)
                return residual.copy()
            finally:
                residual.rollback(state)
        profile = residual.copy()
        for start, end, procs in suffix:
            profile.add(start, end, procs)
        profile.compact()
        return profile

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        self._cached_plan = None
        self._frontier = None

    def advance(self, now: float) -> None:
        """Advance the residual's left edge; entries are unaffected."""
        if now == self.now:
            return
        self.residual.advance(now)
        self.now = now
        self._invalidate()

    def place(self, job_id: int, procs: int, duration: float, earliest: float) -> PlannedJob:
        """Place one job at the earliest slot of the residual and append it."""
        start = self.residual.earliest_slot(procs, duration, earliest)
        if math.isfinite(start):
            end = start + duration
            self.residual.subtract(start, end, procs)
        else:
            end = math.inf
        entry = PlannedJob(job_id, procs, start, end)
        self.entries.append(entry)
        # A tail append can only raise the frontier, so the cached value is
        # maintained instead of recomputed — submits stay O(1) in queue
        # depth on the frontier side.
        self._cached_plan = None
        if (
            self._frontier is not None
            and math.isfinite(start)
            and start > self._frontier
        ):
            self._frontier = start
        return entry

    def restore_suffix(self, index: int) -> None:
        """Undo the placements of queue positions ``index..end``.

        The residual afterwards equals what the reference planner would
        see before placing position ``index``; callers then re-place the
        (possibly edited) suffix.
        """
        entries = self.entries
        if index >= len(entries):
            return
        suffix = [
            (entry.planned_start, entry.planned_end, entry.procs)
            for entry in entries[index:]
            if entry.is_feasible()
        ]
        del entries[index:]
        if hasattr(self.residual, "release_many"):
            self.residual.release_many(suffix)
        else:
            for start, end, procs in suffix:
                self.residual.add(start, end, procs)
            self.residual.compact()
        self._invalidate()

    def remove_started(self, index: int) -> None:
        """Drop the entry of a job that started exactly at its planned slot.

        The reservation stays subtracted from the residual: it simply moved
        from the planned suffix to the cluster's running set, which is the
        one transition that costs nothing under the dirty-suffix invariant.
        """
        del self.entries[index]
        self._invalidate()

    def reset(self, residual: AvailabilityProfile, now: float) -> None:
        """Restart from a fresh base profile (full replan)."""
        self.residual = residual
        self.now = now
        self.entries = []
        self._invalidate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalPlan({self.cluster_name}, t={self.now:.0f}, "
            f"{len(self.entries)} jobs)"
        )
